package crowddb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFenceEpochSemantics(t *testing.T) {
	f := NewFence(nil)
	if f.Epoch() != 1 || f.ObservedEpoch() != 1 {
		t.Fatalf("fresh fence epochs = %d/%d, want 1/1", f.Epoch(), f.ObservedEpoch())
	}
	if f.Sealed() {
		t.Fatal("fresh fence is sealed")
	}

	// Epochs from a different history are a different lineage: ignored.
	if f.Observe("some-other-history", 99, "http://elsewhere") {
		t.Fatal("foreign-history epoch sealed the node")
	}
	if f.Sealed() || f.ObservedEpoch() != 1 {
		t.Fatalf("foreign-history epoch leaked in: sealed=%v observed=%d", f.Sealed(), f.ObservedEpoch())
	}

	// A higher epoch for our own history seals, permanently, and the
	// hint is kept for refusals.
	if !f.Observe(f.History(), 3, "http://new-primary") {
		t.Fatal("own-history higher epoch did not seal")
	}
	if !f.Sealed() {
		t.Fatal("fence not sealed after observing higher epoch")
	}
	if _, by := f.sealedBy(); by != "epoch" {
		t.Fatalf("sealed by %q, want epoch", by)
	}
	if f.NewPrimary() != "http://new-primary" {
		t.Fatalf("new primary hint = %q", f.NewPrimary())
	}
	if err := f.Renew("sup", time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("lease renewal on an epoch-sealed node = %v, want ErrFenced", err)
	}
	st := f.Status()
	if !st.Sealed || st.SealedBy != "epoch" || st.Observed != 3 || st.Epoch != 1 || st.Seals != 1 {
		t.Fatalf("sealed status = %+v", st)
	}

	// Observing a lower epoch never un-seals (monotone).
	f.Observe(f.History(), 2, "")
	if !f.Sealed() || f.ObservedEpoch() != 3 {
		t.Fatalf("lower epoch rewound the fence: sealed=%v observed=%d", f.Sealed(), f.ObservedEpoch())
	}

	// Promotion bumps the node's own epoch past what it observed — the
	// only way out of an epoch seal.
	if err := f.Bump(4); err != nil {
		t.Fatal(err)
	}
	if f.Sealed() || f.Epoch() != 4 || f.ObservedEpoch() != 4 {
		t.Fatalf("bump to 4: sealed=%v epochs=%d/%d", f.Sealed(), f.Epoch(), f.ObservedEpoch())
	}
}

func TestFenceLeaseSealsLazilyAndRenewalUnseals(t *testing.T) {
	f := NewFence(nil)
	var mu sync.Mutex
	clock := time.Unix(1000, 0)
	f.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	// No supervisor has ever renewed: the lease never seals.
	advance(time.Hour)
	if f.Sealed() {
		t.Fatal("node with no lease armed sealed itself")
	}

	if err := f.Renew("sup-1", time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Sealed() {
		t.Fatal("sealed under a live lease")
	}
	advance(2 * time.Second)
	if !f.Sealed() {
		t.Fatal("lapsed lease did not seal")
	}
	if _, by := f.sealedBy(); by != "lease" {
		t.Fatalf("sealed by %q, want lease", by)
	}

	// The seal is provisional: a renewal (supervisor restart, healed
	// partition) un-seals.
	if err := f.Renew("sup-2", time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Sealed() {
		t.Fatal("renewal did not un-seal")
	}
	st := f.Status()
	if st.LeaseHolder != "sup-2" || st.LeaseTTLLeft <= 0 {
		t.Fatalf("lease status = %+v", st)
	}
	if err := f.Renew("sup-2", 0); err == nil {
		t.Fatal("zero-ttl renewal accepted")
	}
}

func TestFencingEpochPersistsAcrossReopen(t *testing.T) {
	d, model := trainedFixture(t)
	dir := t.TempDir()
	rig := openDurable(t, dir, d, model, Options{Sync: SyncAlways()})
	if got := rig.db.FencingEpoch(); got != 1 {
		t.Fatalf("fresh history epoch = %d, want 1", got)
	}
	rig.resolveOneTask(t, "a task so the journal has content", []float64{4, 2})

	// The node learns it was deposed (epoch 3 exists) — and the
	// knowledge must survive a restart, or a crashed deposed primary
	// would come back up accepting writes.
	if err := rig.db.ObserveFencingEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := rig.db.Close(); err != nil {
		t.Fatal(err)
	}

	rig2 := openDurable(t, dir, d, nil, Options{Sync: SyncAlways()})
	defer rig2.db.Close()
	if own, obs := rig2.db.FencingEpoch(), rig2.db.FencingObserved(); own != 1 || obs != 3 {
		t.Fatalf("reopened epochs = %d/%d, want 1/3", own, obs)
	}
	f := NewFence(rig2.db)
	if !f.Sealed() {
		t.Fatal("deposed node restarted unsealed")
	}

	// Promotion (epoch past the observed one) persists too.
	if err := rig2.db.SetFencingEpoch(4); err != nil {
		t.Fatal(err)
	}
	if err := rig2.db.Close(); err != nil {
		t.Fatal(err)
	}
	rig3 := openDurable(t, dir, d, nil, Options{Sync: SyncAlways()})
	defer rig3.db.Close()
	if own := rig3.db.FencingEpoch(); own != 4 {
		t.Fatalf("promoted epoch after reopen = %d, want 4", own)
	}
	if NewFence(rig3.db).Sealed() {
		t.Fatal("promoted node restarted sealed")
	}
}

// TestFencedServerGate drives the HTTP layer end to end: an explicit
// fence order seals a deposed primary (inbound gossip headers are
// untrusted and must NOT), mutations refuse with the typed 409 and
// the new-primary hint, reads keep serving, /readyz and /api/v1/metrics
// report the fenced role, and the replication stream goes dark.
func TestFencedServerGate(t *testing.T) {
	rig, src, ts := replPrimary(t)
	rig.resolveOneTask(t, "one committed task before the deposition", []float64{4, 2})

	fence := NewFence(rig.db)
	src.SetFence(fence)
	srv := NewServer(rig.mgr)
	srv.SetFence(fence)
	api := httptest.NewServer(srv)
	defer api.Close()
	history := rig.db.ReplicationHistory()

	// Baseline: mutations accepted, every response gossips the epoch.
	resp, err := http.Post(api.URL+"/api/v1/tasks", "application/json", bytes.NewBufferString(`{"text":"accepted before the seal"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pre-seal mutation got %s, want 201", resp.Status)
	}
	if got := resp.Header.Get("X-Crowdd-Fencing-Epoch"); got != "1" {
		t.Fatalf("gossiped epoch = %q, want 1", got)
	}
	if got := resp.Header.Get("X-Crowdd-History"); got != history {
		t.Fatalf("gossiped history = %q, want %q", got, history)
	}

	// A client that heard of epoch 2 echoes it on an ordinary request.
	// Request headers are untrusted — anyone who can reach the port can
	// set them — so the echo must NOT seal the node: a stray curl with
	// a large epoch would otherwise brick every primary it touches.
	req, _ := http.NewRequest(http.MethodGet, api.URL+"/readyz", nil)
	req.Header.Set("X-Crowdd-History", history)
	req.Header.Set("X-Crowdd-Fencing-Epoch", "2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if fence.Sealed() {
		t.Fatal("inbound gossip headers sealed the node: request headers are untrusted input")
	}

	// The explicit fence order is the trusted path: it seals, raises
	// the observed epoch, and carries the hint.
	body, _ := json.Marshal(FenceRequest{History: history, Epoch: 3, NewPrimary: "http://new-primary.example"})
	resp, err = http.Post(api.URL+"/api/v1/replication/fence", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var fr FenceResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || fr.Role != RoleFenced || !fr.Fencing.Sealed || fr.Fencing.Observed != 3 {
		t.Fatalf("fence order response = %s %+v, want 200 fenced observed 3", resp.Status, fr)
	}

	// Mutations now refuse with the typed 409 and the redirect hint.
	resp, err = http.Post(api.URL+"/api/v1/tasks", "application/json", bytes.NewBufferString(`{"text":"must be refused"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mutation on fenced node got %s (%s), want 409", resp.Status, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != codeFenced {
		t.Fatalf("fenced refusal envelope = %s, want code %s", raw, codeFenced)
	}
	if got := resp.Header.Get("X-Crowdd-Primary"); got != "http://new-primary.example" {
		t.Fatalf("X-Crowdd-Primary = %q, want the fence order's hint", got)
	}
	if got := resp.Header.Get("X-Crowdd-Fencing-Epoch"); got != "3" {
		t.Fatalf("refusal epoch header = %q, want 3", got)
	}

	// Reads keep serving: a fenced node is a read replica in all but name.
	resp, err = http.Post(api.URL+"/api/v1/selections", "application/json",
		bytes.NewBufferString(`{"tasks":[{"text":"classify this photograph"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selections on fenced node got %s, want 200", resp.Status)
	}

	// /readyz and /api/v1/metrics both report the fenced role and epochs.
	resp, err = http.Get(api.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Role != RoleFenced || ready.Fencing == nil || !ready.Fencing.Sealed || ready.FencingEpoch != 1 {
		t.Fatalf("readyz on fenced node = %+v", ready)
	}
	resp, err = http.Get(api.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Fencing == nil || !snap.Fencing.Sealed || snap.Fencing.SealedBy != "epoch" {
		t.Fatalf("metrics fencing block = %+v", snap.Fencing)
	}

	// The replication source refuses too: a deposed primary must not
	// keep feeding followers a dead branch of history.
	resp, err = http.Get(fmt.Sprintf("%s/api/v1/replication/stream?from=0&history=%s", ts.URL, history))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stream from fenced source got %s, want 409", resp.Status)
	}

	// And promotion of a fenced node is refused: its history lost.
	resp, err = http.Post(api.URL+"/api/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on fenced node got %s, want 409", resp.Status)
	}
}

// TestFleetTokenGatesControlSurface: with a fleet token configured,
// the replication control surface (fence, lease, promote, stream)
// demands the bearer token; probes and the public task API stay open.
// Without the gate, anyone who can reach the port could fence a
// primary or seal its lease — a one-request denial of service.
func TestFleetTokenGatesControlSurface(t *testing.T) {
	rig, _, _ := replPrimary(t)
	fence := NewFence(rig.db)
	srv := NewServer(rig.mgr)
	srv.SetFence(fence)
	srv.SetFleetToken("drill-token")
	api := httptest.NewServer(srv)
	defer api.Close()
	history := rig.db.ReplicationHistory()

	do := func(token, method, path, body string) int {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = bytes.NewBufferString(body)
		}
		req, err := http.NewRequest(method, api.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	fenceBody := fmt.Sprintf(`{"history":%q,"epoch":9}`, history)
	if got := do("", http.MethodPost, "/api/v1/replication/fence", fenceBody); got != http.StatusForbidden {
		t.Fatalf("unauthenticated fence order got %d, want 403", got)
	}
	if got := do("wrong-token", http.MethodPost, "/api/v1/replication/fence", fenceBody); got != http.StatusForbidden {
		t.Fatalf("wrong-token fence order got %d, want 403", got)
	}
	if fence.Sealed() {
		t.Fatal("rejected fence order still sealed the node")
	}
	if got := do("", http.MethodPost, "/api/v1/replication/lease", `{"holder":"rogue","seal":true}`); got != http.StatusForbidden {
		t.Fatalf("unauthenticated lease seal got %d, want 403", got)
	}

	// The right token passes, and the rest of the node stays open.
	if got := do("drill-token", http.MethodPost, "/api/v1/replication/lease", `{"holder":"sup","ttl_ms":60000}`); got != http.StatusOK {
		t.Fatalf("authenticated lease renewal got %d, want 200", got)
	}
	if got := do("", http.MethodGet, "/readyz", ""); got != http.StatusOK {
		t.Fatalf("readyz behind a fleet token got %d, want 200 (probes stay open)", got)
	}
	if got := do("", http.MethodPost, "/api/v1/tasks", `{"text":"public api stays open"}`); got != http.StatusCreated {
		t.Fatalf("task submit behind a fleet token got %d, want 201", got)
	}
}

// TestLeaseEndpointSealsOnLapse exercises the supervisor-lease half
// over HTTP: renewals keep a primary accepting writes, a lapse seals
// it (zero acks while partitioned from the supervisor), and the next
// renewal un-seals.
func TestLeaseEndpointSealsOnLapse(t *testing.T) {
	rig, _, _ := replPrimary(t)
	fence := NewFence(rig.db)
	srv := NewServer(rig.mgr)
	srv.SetFence(fence)
	api := httptest.NewServer(srv)
	defer api.Close()

	renew := func(ttlMs int64) *http.Response {
		t.Helper()
		body, _ := json.Marshal(LeaseRequest{Holder: "test-sup", TTLMs: ttlMs})
		resp, err := http.Post(api.URL+"/api/v1/replication/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	mutate := func() int {
		t.Helper()
		resp, err := http.Post(api.URL+"/api/v1/tasks", "application/json", bytes.NewBufferString(`{"text":"lease gate probe"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	resp := renew(50)
	var ready ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Role != RolePrimary {
		t.Fatalf("lease renewal = %s role %q, want 200 primary", resp.Status, ready.Role)
	}
	if got := mutate(); got != http.StatusCreated {
		t.Fatalf("mutation under live lease got %d, want 201", got)
	}

	waitUntil(t, "lease lapse seals the node", func() bool {
		return mutate() == http.StatusConflict
	})
	if _, by := fence.sealedBy(); by != "lease" {
		t.Fatalf("sealed by %q, want lease", by)
	}

	// The supervisor comes back: one renewal restores service.
	resp = renew(60_000)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-lapse renewal got %s, want 200", resp.Status)
	}
	if got := mutate(); got != http.StatusCreated {
		t.Fatalf("mutation after renewal got %d, want 201", got)
	}
}

// TestConcurrentPromotionSingleWinner races promotions at a blocked
// replica: exactly one caller runs the promotion, concurrent callers
// get the typed ErrPromotionInProgress mid-flight (409
// promotion_in_progress over HTTP), and late callers get the winner's
// result.
func TestConcurrentPromotionSingleWinner(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "the last committed task", []float64{4, 2})
	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	killPrimary(ts)

	srv := NewServer(rep.Manager())
	srv.SetRole(RoleReplica)
	srv.SetReplicationStatus(rep.Status)
	srv.SetPromoter(rep.Promote)
	rts := httptest.NewServer(srv)
	defer rts.Close()

	// Block the winner mid-promotion (Promote compacts, compaction
	// quiesces) so the race window is held open deterministically.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	rep.DB().SetQuiescer(func(fn func() error) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return rep.Manager().Quiesce(fn)
	})

	winner := make(chan error, 1)
	go func() { winner <- rep.Promote(context.Background()) }()
	<-entered

	// Mid-flight losers: typed error, both in-process and over HTTP.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rep.Promote(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrPromotionInProgress) {
			t.Fatalf("loser %d: err = %v, want ErrPromotionInProgress", i, err)
		}
	}
	resp, err := http.Post(rts.URL+"/api/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env ErrorEnvelope
	if resp.StatusCode != http.StatusConflict || json.Unmarshal(raw, &env) != nil || env.Error.Code != codePromotionInProgress {
		t.Fatalf("HTTP loser got %s (%s), want 409 %s", resp.Status, raw, codePromotionInProgress)
	}

	close(release)
	if err := <-winner; err != nil {
		t.Fatalf("winner: %v", err)
	}
	if st := rep.Status(); st.Role != RolePrimary || st.FencingEpoch != 2 {
		t.Fatalf("after promotion: role %q epoch %d, want primary 2", st.Role, st.FencingEpoch)
	}
	// A caller arriving after completion gets the winner's result: the
	// promotion happened exactly once either way.
	if err := rep.Promote(context.Background()); err != nil {
		t.Fatalf("late caller: %v", err)
	}
}

// TestPromotionFailureIsRetryable: a promotion that dies mid-flight
// (here: the checkpoint fails) must not latch the replica into a
// half-promoted state — the flip is released, the role stays replica,
// and a later call retries the whole sequence and succeeds.
func TestPromotionFailureIsRetryable(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "the last committed task", []float64{4, 2})
	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	killPrimary(ts)

	var mu sync.Mutex
	boom := true
	rep.DB().SetQuiescer(func(fn func() error) error {
		mu.Lock()
		b := boom
		boom = false
		mu.Unlock()
		if b {
			return errors.New("boom: checkpoint died mid-promotion")
		}
		return rep.Manager().Quiesce(fn)
	})

	if err := rep.Promote(context.Background()); err == nil {
		t.Fatal("promotion with a failing checkpoint reported success")
	}
	if st := rep.Status(); st.Role == RolePrimary {
		t.Fatalf("failed promotion still flipped the role: %+v", st)
	}

	if err := rep.Promote(context.Background()); err != nil {
		t.Fatalf("retry after a failed promotion: %v", err)
	}
	st := rep.Status()
	if st.Role != RolePrimary {
		t.Fatalf("after retry: role %q, want primary", st.Role)
	}
	// The failed attempt burned epoch 2 (the epoch write landed before
	// the checkpoint died); the retry claims the next one. Both are
	// past every observed epoch, which is all fencing needs.
	if st.FencingEpoch != 3 {
		t.Fatalf("after retry: fencing epoch %d, want 3", st.FencingEpoch)
	}
}

package crowddb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/rank"
	"crowdselect/internal/text"
)

// Selector ranks candidate workers for a task. *core.Model and every
// baseline in internal/baseline satisfy it.
type Selector interface {
	Name() string
	Rank(bag text.Bag, candidates []int) []int
}

// BatchRanker is the optional batched-selection hook: a Selector that
// also implements it (as *core.ConcurrentModel does) ranks a whole
// batch of tasks in one call — projections fan out across cores and
// every selection sees one model version. The manager's SubmitBatch
// uses it when available and falls back to sequential Rank calls
// otherwise. Results must be element-wise identical to ranking each
// bag alone (truncated to k).
type BatchRanker interface {
	RankBatch(ctx context.Context, bags []text.Bag, candidates []int, k int) ([][]int, error)
}

// ScoredBatchRanker is the scatter-gather hook: a Selector that also
// implements it (as *core.ConcurrentModel does) returns per-candidate
// Eq. 1 scores alongside the ranking. Scores are what make per-shard
// top-k lists mergeable into a global top-k; RankOnlyScored requires
// this interface.
type ScoredBatchRanker interface {
	RankBatchScored(ctx context.Context, bags []text.Bag, candidates []int, k int) ([][]rank.Item, error)
}

// SkillUpdater is the optional incremental-learning hook: when the
// manager's Selector also implements it (as *core.Model and
// *core.ConcurrentModel do), every resolved task's feedback is folded
// into the answerers' skill posteriors — the crowd-update path of
// §4.2. UpdateWorkerSkill reports invalid input or a failed solve; the
// manager surfaces that error to the feedback caller.
type SkillUpdater interface {
	Project(bag text.Bag) core.TaskCategory
	UpdateWorkerSkill(worker int, cats []core.TaskCategory, scores []float64) error
}

// Manager is the crowd manager of Figure 1: it projects incoming
// tasks, selects the right online workers, drives the dispatcher, and
// folds feedback back into the crowd database and the model.
type Manager struct {
	store *Store
	vocab *text.Vocabulary
	sel   Selector
	k     int
	// resolveMu keeps the two halves of a resolve — the store commit
	// and the model's posterior update — atomic with respect to
	// durability checkpoints: ResolveTask holds it shared, Quiesce
	// exclusively.
	resolveMu sync.RWMutex
	// shard is this node's identity in an N-shard fleet. When enabled,
	// selection candidates shrink to owned workers, skill updates fold
	// only owned posteriors, and ApplyModelFeedback refuses workers
	// owned elsewhere. Set once at boot, before traffic and before
	// recovery replays the journal (replay reuses the same filters, so
	// the rebuilt model matches the live one).
	shard ShardSpec
}

// ManagerConfig collects a Manager's dependencies for NewManagerWith.
// New knobs extend the struct without breaking call sites, which is why
// new code should prefer it over the positional NewManager.
type ManagerConfig struct {
	// Store is the crowd database the manager serves (required).
	Store *Store
	// Vocab maps task text to the term ids the selector was trained on
	// (required).
	Vocab *text.Vocabulary
	// Selector ranks workers for a task (required).
	Selector Selector
	// CrowdK is the default crowd size per task (required, >= 1).
	CrowdK int
	// Shard is the node's slice of a sharded fleet (zero: unsharded).
	Shard ShardSpec
	// Tenant namespaces the manager's journal records (empty or
	// "default": the un-prefixed default tenant).
	Tenant string
}

// NewManagerWith is the options-struct form of NewManager; it also
// applies the shard identity and tenant namespace, which must both be
// set before any mutation is journaled or replayed.
func NewManagerWith(cfg ManagerConfig) (*Manager, error) {
	m, err := NewManager(cfg.Store, cfg.Vocab, cfg.Selector, cfg.CrowdK)
	if err != nil {
		return nil, err
	}
	m.SetShard(cfg.Shard)
	if cfg.Tenant != "" {
		m.SetTenant(cfg.Tenant)
	}
	return m, nil
}

// NewManager wires a crowd manager over the store. vocab maps task
// text to the term ids the selector was trained on; k is the default
// crowd size per task.
//
// Deprecated: prefer NewManagerWith — its ManagerConfig grows new
// fields (shard identity, tenant namespace, ...) without breaking call
// sites. NewManager remains supported for existing callers.
//
// A bare *core.Model is wrapped in a core.ConcurrentModel: the manager
// serves selection and feedback traffic concurrently (the HTTP server
// handles each request on its own goroutine), and an unwrapped model
// would race its posterior updates against selection reads.
func NewManager(store *Store, vocab *text.Vocabulary, sel Selector, k int) (*Manager, error) {
	if store == nil || vocab == nil || sel == nil {
		return nil, fmt.Errorf("%w: manager needs a store, vocabulary and selector", ErrBadRequest)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: crowd size %d", ErrBadRequest, k)
	}
	if m, ok := sel.(*core.Model); ok {
		sel = core.NewConcurrentModel(m)
	}
	return &Manager{store: store, vocab: vocab, sel: sel, k: k}, nil
}

// Store returns the underlying crowd database.
func (m *Manager) Store() *Store { return m.store }

// SetShard installs the node's shard identity and strides the store's
// task ids onto it. Call at boot before recovery and before serving:
// ownership filters must be in place when the journal replays, or the
// rebuilt posteriors would differ from the ones that produced it.
func (m *Manager) SetShard(sp ShardSpec) {
	m.shard = sp
	m.store.ConfigureTaskIDStride(sp.Index, sp.Count)
}

// Shard reports the node's shard identity (zero value: unsharded).
func (m *Manager) Shard() ShardSpec { return m.shard }

// SetTenant names the tenant this manager (and its store) serves
// (DESIGN §13). Call once at boot, before mutations and before
// recovery, so journal records are stamped — and cross-checked —
// against the right namespace.
func (m *Manager) SetTenant(name string) { m.store.SetTenant(name) }

// Tenant reports the manager's namespace (DefaultTenant when unset).
func (m *Manager) Tenant() string { return m.store.Tenant() }

// candidateWorkers is the selection candidate set: online workers,
// restricted to the ones this shard owns. The global top-k over all
// shards' candidates equals the single-node top-k because the parts
// partition the online set.
func (m *Manager) candidateWorkers() []int {
	online := m.store.OnlineWorkers()
	if !m.shard.Enabled() {
		return online
	}
	owned := make([]int, 0, len(online))
	for _, id := range online {
		if m.shard.OwnsWorker(id) {
			owned = append(owned, id)
		}
	}
	return owned
}

// SelectorName reports which algorithm backs the manager.
func (m *Manager) SelectorName() string { return m.sel.Name() }

// Submission is the result of SubmitTask: the stored task and the
// workers the dispatcher distributed it to, best first.
type Submission struct {
	Task    TaskRecord
	Workers []int
}

// TaskSubmission is one element of a SubmitBatch request. K ≤ 0 uses
// the manager default crowd size. A non-empty Workers list bypasses
// ranking and assigns exactly those workers, best first — the
// scatter-gather coordinator's submit path, where the global top-k was
// already merged from per-shard scored selections. Preassigned workers
// this shard owns must be online (see validatePreassigned); foreign
// workers are the coordinator's responsibility.
type TaskSubmission struct {
	Text    string
	K       int
	Workers []int
}

// SubmitTask runs the blue path of Figure 1: store the task, project
// it into the latent category space, rank the online workers, keep the
// top k, and dispatch. k ≤ 0 uses the manager default. ctx cancels
// the selection work (a disconnected HTTP client stops the
// projection).
func (m *Manager) SubmitTask(ctx context.Context, taskText string, k int) (Submission, error) {
	subs, err := m.SubmitBatch(ctx, []TaskSubmission{{Text: taskText, K: k}})
	if err != nil {
		return Submission{}, err
	}
	return subs[0], nil
}

// SubmitBatch runs the blue path of Figure 1 for a whole batch in one
// round trip: every task is stored (ids are assigned in input order),
// all bags are projected and ranked together — through the selector's
// BatchRanker fast path when available, which fans projections across
// cores — and each task is dispatched to its own top-k crowd.
// Selections are element-wise identical to submitting the tasks one by
// one with no interleaved feedback.
//
// The batch is not transactional: a mid-batch failure (or ctx
// cancellation during ranking) returns the error and leaves already
// stored tasks open and unassigned, exactly as if their individual
// submissions had failed at the same point.
func (m *Manager) SubmitBatch(ctx context.Context, reqs []TaskSubmission) ([]Submission, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, r := range reqs {
		if err := m.validatePreassigned(r.Workers); err != nil {
			return nil, fmt.Errorf("task index %d: %w", i, err)
		}
	}
	tasks := make([]TaskRecord, len(reqs))
	ks := make([]int, len(reqs))
	var rankIdx []int // indices of tasks that still need ranking
	var rankBags []text.Bag
	kmax := 0
	for i, r := range reqs {
		ks[i] = r.K
		if ks[i] <= 0 {
			ks[i] = m.k
		}
		tokens := text.Tokenize(r.Text)
		task, err := m.store.AddTask(r.Text, tokens)
		if err != nil {
			return nil, err
		}
		tasks[i] = task
		if len(r.Workers) > 0 {
			continue // preassigned crowd: no ranking needed
		}
		if ks[i] > kmax {
			kmax = ks[i]
		}
		rankIdx = append(rankIdx, i)
		rankBags = append(rankBags, text.NewBagKnown(m.vocab, tokens))
	}
	ranked := make([][]int, len(reqs))
	if len(rankIdx) > 0 {
		online := m.candidateWorkers()
		if len(online) == 0 {
			return nil, fmt.Errorf("%w: no online workers", ErrBadRequest)
		}
		parts, err := m.rankBatch(ctx, rankBags, online, kmax)
		if err != nil {
			return nil, err
		}
		for j, i := range rankIdx {
			ranked[i] = parts[j]
		}
	}
	out := make([]Submission, len(reqs))
	for i := range reqs {
		crowd := reqs[i].Workers
		if len(crowd) == 0 {
			crowd = ranked[i]
			if len(crowd) > ks[i] {
				crowd = crowd[:ks[i]]
			}
		}
		if err := m.store.Assign(tasks[i].ID, crowd); err != nil {
			return nil, err
		}
		stored, err := m.store.GetTask(tasks[i].ID)
		if err != nil {
			return nil, err
		}
		out[i] = Submission{Task: stored, Workers: crowd}
	}
	return out, nil
}

// validatePreassigned gates the Workers preassignment bypass, which
// the public tasks endpoints also expose. For every worker this shard
// owns (all of them, on an unsharded node) the local presence bit is
// authoritative, so an unknown, duplicate, or offline worker is
// refused up front — otherwise any client could assign crowds that
// will never answer, skipping both ranking and the online filter.
// Foreign-owned workers are trusted: in a sharded fleet the field is
// how the scatter-gather coordinator hands a task's home shard the
// globally merged crowd, whose foreign members were drawn from their
// owner shards' own online candidate sets.
func (m *Manager) validatePreassigned(workers []int) error {
	seen := make(map[int]bool, len(workers))
	for _, w := range workers {
		if seen[w] {
			return fmt.Errorf("%w: duplicate preassigned worker %d", ErrBadRequest, w)
		}
		seen[w] = true
		if !m.shard.OwnsWorker(w) {
			continue
		}
		wk, err := m.store.GetWorker(w)
		if err != nil {
			return err
		}
		if !wk.Online {
			return fmt.Errorf("%w: preassigned worker %d is offline", ErrBadRequest, w)
		}
	}
	return nil
}

// RankOnly is the pure selection path: it projects and ranks a batch
// of tasks against the online workers without storing anything — no
// task rows, no assignments, no journal writes. This is the read-only
// counterpart of SubmitBatch (selections are computed by the same
// ranking code) and the only selection path that stays available in
// degraded read-only mode, when the store has sealed mutations.
func (m *Manager) RankOnly(ctx context.Context, reqs []TaskSubmission) ([][]int, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bags := make([]text.Bag, len(reqs))
	ks := make([]int, len(reqs))
	kmax := 0
	for i, r := range reqs {
		ks[i] = r.K
		if ks[i] <= 0 {
			ks[i] = m.k
		}
		if ks[i] > kmax {
			kmax = ks[i]
		}
		bags[i] = text.NewBagKnown(m.vocab, text.Tokenize(r.Text))
	}
	online := m.candidateWorkers()
	if len(online) == 0 {
		return nil, fmt.Errorf("%w: no online workers", ErrBadRequest)
	}
	ranked, err := m.rankBatch(ctx, bags, online, kmax)
	if err != nil {
		return nil, err
	}
	for i := range ranked {
		if len(ranked[i]) > ks[i] {
			ranked[i] = ranked[i][:ks[i]]
		}
	}
	return ranked, nil
}

// RankOnlyScored is RankOnly keeping the Eq. 1 scores — the per-shard
// leg of scatter-gather selection. It requires a selector with the
// ScoredBatchRanker hook; baseline selectors that expose no scores get
// ErrBadRequest (their rankings cannot be merged across shards).
func (m *Manager) RankOnlyScored(ctx context.Context, reqs []TaskSubmission) ([][]rank.Item, error) {
	sbr, ok := m.sel.(ScoredBatchRanker)
	if !ok {
		return nil, fmt.Errorf("%w: selector %s does not expose selection scores", ErrBadRequest, m.sel.Name())
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bags := make([]text.Bag, len(reqs))
	ks := make([]int, len(reqs))
	kmax := 0
	for i, r := range reqs {
		ks[i] = r.K
		if ks[i] <= 0 {
			ks[i] = m.k
		}
		if ks[i] > kmax {
			kmax = ks[i]
		}
		bags[i] = text.NewBagKnown(m.vocab, text.Tokenize(r.Text))
	}
	online := m.candidateWorkers()
	if len(online) == 0 {
		return nil, fmt.Errorf("%w: no online workers", ErrBadRequest)
	}
	scored, err := sbr.RankBatchScored(ctx, bags, online, kmax)
	if err != nil {
		return nil, err
	}
	for i := range scored {
		if len(scored[i]) > ks[i] {
			scored[i] = scored[i][:ks[i]]
		}
	}
	return scored, nil
}

// ApplyModelFeedback folds feedback scores into owned workers'
// posteriors without touching any task row — the red path's
// cross-shard leg. The coordinator resolves a task at its home shard,
// then forwards each foreign answerer's score here, to the shard that
// owns the worker's posterior. Scores for workers owned elsewhere are
// refused with a typed wrong-shard error. The update is journaled
// first (sealed gate applies), so it survives recovery and reaches
// replicas like any resolve.
//
// forwardOf >= 0 names the home-shard task this forward belongs to
// and makes the call idempotent: the scores for a given task fold at
// most once per owner, however often a coordinator retries after a
// partial failure. forwardOf < 0 applies unconditionally (unkeyed
// model-only feedback).
func (m *Manager) ApplyModelFeedback(ctx context.Context, forwardOf int, taskText string, scores map[int]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(scores) == 0 {
		return fmt.Errorf("%w: no scores", ErrBadRequest)
	}
	if _, ok := m.sel.(SkillUpdater); !ok {
		return fmt.Errorf("%w: selector %s does not learn from feedback", ErrBadRequest, m.sel.Name())
	}
	for w := range scores {
		if !m.shard.OwnsWorker(w) {
			return &WrongShardError{Resource: "worker", ID: w, Owner: ShardOfWorker(w, m.shard.Count)}
		}
	}
	tokens := text.Tokenize(taskText)
	m.resolveMu.RLock()
	defer m.resolveMu.RUnlock()
	applied, err := m.store.LogSkillFeedback(tokens, scores, forwardOf)
	if err != nil {
		return err
	}
	if !applied { // duplicate forward: already folded, idempotent success
		return nil
	}
	return m.applySkillFeedback(syntheticFeedbackRecord(tokens, scores))
}

// rankBatch ranks every bag against the candidate set, truncated to k:
// one BatchRanker call when the selector supports it, otherwise a
// sequential loop with a cancellation check per task.
func (m *Manager) rankBatch(ctx context.Context, bags []text.Bag, candidates []int, k int) ([][]int, error) {
	if br, ok := m.sel.(BatchRanker); ok {
		return br.RankBatch(ctx, bags, candidates, k)
	}
	out := make([][]int, len(bags))
	for i, bag := range bags {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ranked := m.sel.Rank(bag, candidates)
		if len(ranked) > k {
			ranked = ranked[:k]
		}
		out[i] = ranked
	}
	return out, nil
}

// CollectAnswer records one worker's answer to a dispatched task.
func (m *Manager) CollectAnswer(taskID, workerID int, answer string) error {
	return m.store.RecordAnswer(taskID, workerID, answer)
}

// RedispatchExpired reopens assignments older than maxAge that got no
// answers and dispatches each reopened task to a fresh crowd of k
// workers (the dispatcher's timeout path). It returns the redispatched
// task ids. ctx cancels the per-task selection loop.
func (m *Manager) RedispatchExpired(ctx context.Context, maxAge time.Duration, k int) ([]int, error) {
	if k <= 0 {
		k = m.k
	}
	reopened, err := m.store.ExpireAssignments(maxAge)
	if err != nil {
		return nil, err
	}
	online := m.candidateWorkers()
	if len(online) == 0 && len(reopened) > 0 {
		return nil, fmt.Errorf("%w: no online workers to redispatch to", ErrBadRequest)
	}
	for _, id := range reopened {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		task, err := m.store.GetTask(id)
		if err != nil {
			return nil, err
		}
		ranked := m.sel.Rank(text.NewBagKnown(m.vocab, task.Tokens), online)
		if len(ranked) > k {
			ranked = ranked[:k]
		}
		if err := m.store.Assign(id, ranked); err != nil {
			return nil, err
		}
	}
	return reopened, nil
}

// ResolveTask records the feedback scores for a task's answers (the
// red path of Figure 1) and, when the selector supports incremental
// learning, updates the answerers' latent skills. A failed skill
// update is reported alongside the already-resolved record: the store
// transition committed, the model update did not. A ctx already
// cancelled at entry aborts before the store commits; once the
// resolve has committed the skill update always runs, so the model
// never silently diverges from the store.
func (m *Manager) ResolveTask(ctx context.Context, taskID int, scores map[int]float64) (TaskRecord, error) {
	if err := ctx.Err(); err != nil {
		return TaskRecord{}, err
	}
	m.resolveMu.RLock()
	defer m.resolveMu.RUnlock()
	rec, err := m.store.Resolve(taskID, scores)
	if err != nil {
		return TaskRecord{}, err
	}
	if err := m.applySkillFeedback(rec); err != nil {
		return rec, fmt.Errorf("task %d resolved but skill update failed: %w", taskID, err)
	}
	return rec, nil
}

// applySkillFeedback folds one resolved task's scores into the
// answerers' posteriors — the second half of ResolveTask, also used
// verbatim when recovery replays resolve events so the rebuilt
// posteriors match the pre-crash model element-wise.
func (m *Manager) applySkillFeedback(rec TaskRecord) error {
	up, ok := m.sel.(SkillUpdater)
	if !ok {
		return nil
	}
	cat := up.Project(text.NewBagKnown(m.vocab, rec.Tokens))
	for _, a := range rec.Answers {
		// A sharded node owns only its slice of the posterior state:
		// foreign answerers' feedback reaches their owner shards through
		// the coordinator's ApplyModelFeedback legs. The same filter
		// runs during journal replay and replication apply, so rebuilt
		// models match the live one exactly.
		if !m.shard.OwnsWorker(a.Worker) {
			continue
		}
		if err := up.UpdateWorkerSkill(a.Worker, []core.TaskCategory{cat}, []float64{a.Score}); err != nil {
			return err
		}
	}
	return nil
}

// ApplySkillFeedback is the journal-recovery hook (DB.Recover's
// onResolve): it replays a resolved record's feedback through the
// same skill-update path ResolveTask uses live.
func (m *Manager) ApplySkillFeedback(rec TaskRecord) error {
	return m.applySkillFeedback(rec)
}

// applyReplicatedEvent applies one replicated journal event through
// the same replay path boot recovery uses, holding the resolve lock
// across the whole application so a resolve's store commit and skill
// update are never split by a checkpoint — the replica-side twin of
// ResolveTask's locking.
func (m *Manager) applyReplicatedEvent(e event) error {
	m.resolveMu.RLock()
	defer m.resolveMu.RUnlock()
	return m.store.applyReplicated(e, m.applySkillFeedback)
}

// Quiesce runs f with no resolve in flight: the durability layer's
// hook (DB.SetQuiescer) for cutting checkpoints where the store and
// the model agree.
func (m *Manager) Quiesce(f func() error) error {
	m.resolveMu.Lock()
	defer m.resolveMu.Unlock()
	return f()
}

package crowddb

import (
	"sync"
	"time"

	"crowdselect/internal/core"
)

// latencyBuckets are the upper bounds, in seconds, of the fixed
// log-spaced latency histogram each endpoint accumulates into. The
// final bucket is an implicit +Inf overflow.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointStats accumulates one endpoint's counters. Latencies live in
// a fixed histogram rather than a sample buffer so memory stays
// constant under heavy traffic.
type endpointStats struct {
	count   int64
	errors  int64
	sum     float64 // seconds
	max     float64 // seconds
	buckets []int64 // len(latencyBuckets)+1, last is overflow
}

// Metrics aggregates per-endpoint request counts, error counts and
// latency histograms for the crowd-manager HTTP server. All methods
// are safe for concurrent use.
type Metrics struct {
	mu           sync.Mutex
	start        time.Time
	endpoints    map[string]*endpointStats
	shed         int64
	shedReads    int64
	shedWrites   int64
	deadlineOver int64
}

// NewMetrics returns an empty registry with uptime anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// Observe records one request against an endpoint label (for the
// server: "METHOD /normalized/path"). Responses with status ≥ 400
// count as errors.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{buckets: make([]int64, len(latencyBuckets)+1)}
		m.endpoints[endpoint] = st
	}
	st.count++
	if status >= 400 {
		st.errors++
	}
	st.sum += sec
	if sec > st.max {
		st.max = sec
	}
	b := len(latencyBuckets)
	for i, hi := range latencyBuckets {
		if sec <= hi {
			b = i
			break
		}
	}
	st.buckets[b]++
}

// ObserveShed counts one request refused by the load-shedding gate,
// split by priority class (mutations shed only after reads).
func (m *Metrics) ObserveShed(mutation bool) {
	m.mu.Lock()
	m.shed++
	if mutation {
		m.shedWrites++
	} else {
		m.shedReads++
	}
	m.mu.Unlock()
}

// ObserveDeadlineOverrun counts one request whose server-side deadline
// budget expired before the handler finished — the admission
// controller's overload signal.
func (m *Metrics) ObserveDeadlineOverrun() {
	m.mu.Lock()
	m.deadlineOver++
	m.mu.Unlock()
}

// EndpointMetrics is one endpoint's externally visible counters;
// latencies are reported in milliseconds.
type EndpointMetrics struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// MetricsSnapshot is the GET /api/metrics payload. Durability is
// populated by the server when a durable DB backs the service.
type MetricsSnapshot struct {
	UptimeSeconds    float64                    `json:"uptime_seconds"`
	Requests         int64                      `json:"requests"`
	Errors           int64                      `json:"errors"`
	Shed             int64                      `json:"shed"`
	ShedReads        int64                      `json:"shed_reads"`
	ShedMutations    int64                      `json:"shed_mutations"`
	DeadlineOverruns int64                      `json:"deadline_overruns"`
	Endpoints        map[string]EndpointMetrics `json:"endpoints"`
	Admission        *AdmissionSnapshot         `json:"admission,omitempty"`
	Durability       *DurabilitySnapshot        `json:"durability,omitempty"`
	Replication      *ReplicationStatus         `json:"replication,omitempty"`
	Fencing          *FenceStatus               `json:"fencing,omitempty"`
	Cache            *core.ProjectionCacheStats `json:"cache,omitempty"`
	Shard            *ShardInfoSnapshot         `json:"shard,omitempty"`
	Integrity        *IntegritySnapshot         `json:"integrity,omitempty"`
	// Tenants appears on multi-tenant nodes (or when the default tenant
	// carries a quota): per-tenant request, in-flight and shed counters.
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`
}

// ShardInfoSnapshot is the shard section of GET /api/v1/metrics: this
// node's identity in the fleet and its current topology epoch.
type ShardInfoSnapshot struct {
	Index int    `json:"index"`
	Count int    `json:"count"`
	Epoch uint64 `json:"epoch"`
}

// Snapshot returns a consistent copy of every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Shed:             m.shed,
		ShedReads:        m.shedReads,
		ShedMutations:    m.shedWrites,
		DeadlineOverruns: m.deadlineOver,
		Endpoints:        make(map[string]EndpointMetrics, len(m.endpoints)),
	}
	for name, st := range m.endpoints {
		em := EndpointMetrics{
			Count:  st.count,
			Errors: st.errors,
			MeanMs: st.sum / float64(st.count) * 1000,
			MaxMs:  st.max * 1000,
			P50Ms:  st.quantile(0.50) * 1000,
			P90Ms:  st.quantile(0.90) * 1000,
			P99Ms:  st.quantile(0.99) * 1000,
		}
		snap.Requests += st.count
		snap.Errors += st.errors
		snap.Endpoints[name] = em
	}
	return snap
}

// quantile estimates the q-th latency quantile (in seconds) from the
// histogram by linear interpolation inside the covering bucket,
// clamped to the observed maximum (interpolating to a bucket's upper
// bound can otherwise overshoot what was actually seen). The overflow
// bucket reports the observed maximum.
func (st *endpointStats) quantile(q float64) float64 {
	if st.count == 0 {
		return 0
	}
	target := q * float64(st.count)
	var cum float64
	for i, n := range st.buckets {
		if n == 0 {
			continue
		}
		if cum+float64(n) >= target {
			if i >= len(latencyBuckets) {
				return st.max
			}
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			frac := (target - cum) / float64(n)
			if v := lo + frac*(latencyBuckets[i]-lo); v < st.max {
				return v
			}
			return st.max
		}
		cum += float64(n)
	}
	return st.max
}

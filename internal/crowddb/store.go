// Package crowddb implements the crowdsourcing-database substrate of
// §2 of the paper (Figure 1): the crowd database storing workers,
// tasks and answers (supporting crowd insertion, update and
// retrieval), the crowd manager that projects incoming tasks and
// selects the right workers, the task dispatcher, and the answer
// collector. An HTTP server exposes the pipeline.
package crowddb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TaskStatus tracks a task through the Figure 1 pipeline.
type TaskStatus int

const (
	// TaskOpen means the task is stored but not yet dispatched.
	TaskOpen TaskStatus = iota
	// TaskAssigned means workers were selected and the dispatcher
	// distributed the task.
	TaskAssigned
	// TaskResolved means feedback was recorded and skills updated.
	TaskResolved
)

// String renders the status.
func (s TaskStatus) String() string {
	switch s {
	case TaskOpen:
		return "open"
	case TaskAssigned:
		return "assigned"
	case TaskResolved:
		return "resolved"
	default:
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
}

// Worker is a crowd worker row.
type Worker struct {
	ID       int       `json:"id"`
	Name     string    `json:"name"`
	Online   bool      `json:"online"`
	Resolved int       `json:"resolved"`
	Joined   time.Time `json:"joined"`
}

// Answer is one collected answer.
type Answer struct {
	Worker int       `json:"worker"`
	Text   string    `json:"text"`
	Score  float64   `json:"score"`
	At     time.Time `json:"at"`
}

// TaskRecord is a task row with its assignment and answers.
type TaskRecord struct {
	ID       int        `json:"id"`
	Text     string     `json:"text"`
	Tokens   []string   `json:"tokens"`
	Status   TaskStatus `json:"status"`
	Assigned []int      `json:"assigned,omitempty"`
	Answers  []Answer   `json:"answers,omitempty"`
	Created  time.Time  `json:"created"`
	// AssignedAt stamps the latest dispatch (zero while open).
	AssignedAt time.Time `json:"assigned_at,omitempty"`
}

// Errors returned by the store.
var (
	ErrNotFound   = errors.New("crowddb: not found")
	ErrBadState   = errors.New("crowddb: invalid task state for operation")
	ErrNotAsked   = errors.New("crowddb: worker was not assigned this task")
	ErrDuplicate  = errors.New("crowddb: duplicate answer")
	ErrBadRequest = errors.New("crowddb: invalid request")
	// ErrDegraded seals mutations while the database is in degraded
	// read-only mode after a journal write failure: reads and pure
	// selections keep working, writes are refused until the disk heals.
	ErrDegraded = errors.New("crowddb: degraded read-only mode (journal write failure)")
)

// Store is the crowd database. It is safe for concurrent use. The zero
// value is not usable; call NewStore.
type Store struct {
	mu      sync.RWMutex
	workers map[int]*Worker
	tasks   map[int]*TaskRecord
	nextTID int
	// shardIdx/shardCnt stride task-id assignment for a sharded fleet:
	// with shardCnt > 1 this store only mints ids ≡ shardIdx (mod
	// shardCnt), so a task id names its home shard and ids stay unique
	// fleet-wide without coordination. shardCnt == 0 means dense ids.
	shardIdx int
	shardCnt int
	// appliedForwards records the home-shard task ids whose forwarded
	// skill feedback this node has already folded (journal ForwardOf
	// keys). It is what makes cross-shard forwarding idempotent: a
	// coordinator retrying a failed leg cannot double-apply a
	// posterior update. Persisted in snapshots and rebuilt by replay.
	appliedForwards map[int]bool
	clock           func() time.Time
	journal         journalSink // nil unless a journal is attached
	// tenant is the namespace this store belongs to (DESIGN §13);
	// empty means the default tenant. Non-default stores stamp the
	// name on every journal record and refuse records stamped for a
	// different namespace on replay.
	tenant string
	// sealed is the degraded read-only gate: mutations refused while
	// set. Atomic (not under mu) because the durability layer seals
	// from inside a journal append, where mu is already held.
	sealed atomic.Bool
}

// NewStore returns an empty crowd database.
func NewStore() *Store {
	return &Store{
		workers:         make(map[int]*Worker),
		tasks:           make(map[int]*TaskRecord),
		appliedForwards: make(map[int]bool),
		clock:           time.Now,
	}
}

// Seal flips the store into degraded read-only mode: every mutator
// returns ErrDegraded until Unseal. Reads and snapshots are untouched.
// The durability layer seals on journal write failure so no mutation
// can be acknowledged that would not survive a crash.
func (s *Store) Seal() { s.sealed.Store(true) }

// Unseal reopens the store for mutations after the disk has healed.
func (s *Store) Unseal() { s.sealed.Store(false) }

// Sealed reports whether the store is in degraded read-only mode.
func (s *Store) Sealed() bool { return s.sealed.Load() }

// sealedErrLocked is the mutation gate; callers hold s.mu.
func (s *Store) sealedErrLocked() error {
	if s.sealed.Load() {
		return ErrDegraded
	}
	return nil
}

// ConfigureTaskIDStride homes this store's task ids on shard index of
// count: every id it mints satisfies id ≡ index (mod count). Configure
// before recovery and before traffic — replayed AddTask events verify
// their recorded ids against the stride, so a store recovered under a
// different shard identity fails loudly instead of renumbering.
// count <= 1 restores dense ids.
func (s *Store) ConfigureTaskIDStride(index, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if count <= 1 {
		s.shardIdx, s.shardCnt = 0, 0
		return
	}
	s.shardIdx, s.shardCnt = index, count
	s.alignTIDLocked()
}

// alignTIDLocked advances nextTID to the smallest id >= nextTID on
// this shard's stride.
func (s *Store) alignTIDLocked() {
	if s.shardCnt <= 1 {
		return
	}
	for s.nextTID%s.shardCnt != s.shardIdx {
		s.nextTID++
	}
}

// tidStrideLocked is the id increment between consecutive tasks.
func (s *Store) tidStrideLocked() int {
	if s.shardCnt <= 1 {
		return 1
	}
	return s.shardCnt
}

// SetClock replaces the time source (tests).
func (s *Store) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = clock
}

// SetTenant names the tenant namespace this store belongs to
// (DESIGN §13). Call once at boot, before mutations: a non-default
// name is stamped on every journal record, and replay/replication
// apply refuse records stamped for a different namespace. The empty
// string and DefaultTenant are equivalent.
func (s *Store) SetTenant(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant = name
}

// Tenant reports the store's namespace (DefaultTenant when unset).
func (s *Store) Tenant() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tenant == "" {
		return DefaultTenant
	}
	return s.tenant
}

// AddWorker inserts a worker with the given id (the id must match the
// selection model's worker index) and returns it. Re-adding an id is
// an error. With a journal attached, the insertion is applied even if
// journaling fails; the returned error then reports the journal
// failure.
func (s *Store) AddWorker(id int, name string) (Worker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return Worker{}, err
	}
	if _, ok := s.workers[id]; ok {
		return Worker{}, fmt.Errorf("%w: worker %d exists", ErrBadRequest, id)
	}
	now := s.clock()
	w := &Worker{ID: id, Name: name, Online: true, Joined: now}
	s.workers[id] = w
	return *w, s.logEvent(event{Kind: evAddWorker, Worker: id, Name: name, At: now})
}

// GetWorker retrieves a worker by id.
func (s *Store) GetWorker(id int) (Worker, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.workers[id]
	if !ok {
		return Worker{}, fmt.Errorf("%w: worker %d", ErrNotFound, id)
	}
	return *w, nil
}

// SetOnline flips a worker's presence flag (the "workers online"
// filter of §2).
func (s *Store) SetOnline(id int, online bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return err
	}
	w, ok := s.workers[id]
	if !ok {
		return fmt.Errorf("%w: worker %d", ErrNotFound, id)
	}
	w.Online = online
	return s.logEvent(event{Kind: evPresence, Worker: id, Online: &online})
}

// OnlineWorkers returns the ids of all online workers, sorted.
func (s *Store) OnlineWorkers() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for id, w := range s.workers {
		if w.Online {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// NumWorkers returns the worker count.
func (s *Store) NumWorkers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers)
}

// Workers returns a copy of every worker row, sorted by id (crowd
// retrieval, §2).
func (s *Store) Workers() []Worker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Worker, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// AddTask inserts a new open task and returns it. Journal failures are
// reported after the insertion is applied.
func (s *Store) AddTask(text string, tokens []string) (TaskRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return TaskRecord{}, err
	}
	now := s.clock()
	t := &TaskRecord{
		ID:      s.nextTID,
		Text:    text,
		Tokens:  append([]string(nil), tokens...),
		Status:  TaskOpen,
		Created: now,
	}
	s.nextTID += s.tidStrideLocked()
	s.tasks[t.ID] = t
	return *t, s.logEvent(event{Kind: evAddTask, Task: t.ID, Text: text, Tokens: t.Tokens, At: now})
}

// GetTask retrieves a task by id.
func (s *Store) GetTask(id int) (TaskRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return TaskRecord{}, fmt.Errorf("%w: task %d", ErrNotFound, id)
	}
	return cloneTask(t), nil
}

// ListTasks returns all tasks with the given status, sorted by id.
func (s *Store) ListTasks(status TaskStatus) []TaskRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []TaskRecord
	for _, t := range s.tasks {
		if t.Status == status {
			out = append(out, cloneTask(t))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// NumTasks returns the task count.
func (s *Store) NumTasks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks)
}

// Assign records the dispatcher's selection for an open task and moves
// it to TaskAssigned. Every assigned worker must exist.
func (s *Store) Assign(taskID int, workers []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return err
	}
	t, ok := s.tasks[taskID]
	if !ok {
		return fmt.Errorf("%w: task %d", ErrNotFound, taskID)
	}
	if t.Status != TaskOpen {
		return fmt.Errorf("%w: task %d is %v", ErrBadState, taskID, t.Status)
	}
	for _, w := range workers {
		if _, ok := s.workers[w]; !ok {
			return fmt.Errorf("%w: worker %d", ErrNotFound, w)
		}
	}
	now := s.clock()
	t.Assigned = append([]int(nil), workers...)
	t.Status = TaskAssigned
	t.AssignedAt = now
	return s.logEvent(event{Kind: evAssign, Task: taskID, Workers: t.Assigned, At: now})
}

// RecordAnswer stores an answer from an assigned worker.
func (s *Store) RecordAnswer(taskID, workerID int, answerText string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return err
	}
	t, ok := s.tasks[taskID]
	if !ok {
		return fmt.Errorf("%w: task %d", ErrNotFound, taskID)
	}
	if t.Status != TaskAssigned {
		return fmt.Errorf("%w: task %d is %v", ErrBadState, taskID, t.Status)
	}
	assigned := false
	for _, w := range t.Assigned {
		if w == workerID {
			assigned = true
			break
		}
	}
	if !assigned {
		return fmt.Errorf("%w: worker %d on task %d", ErrNotAsked, workerID, taskID)
	}
	for _, a := range t.Answers {
		if a.Worker == workerID {
			return fmt.Errorf("%w: worker %d on task %d", ErrDuplicate, workerID, taskID)
		}
	}
	now := s.clock()
	t.Answers = append(t.Answers, Answer{Worker: workerID, Text: answerText, At: now})
	return s.logEvent(event{Kind: evAnswer, Task: taskID, Worker: workerID, Answer: answerText, At: now})
}

// ExpireAssignments reopens assigned tasks whose dispatch is older
// than maxAge and that have received no answers — the dispatcher's
// timeout path for workers who never respond. It returns the reopened
// task ids, sorted. Tasks with partial answers are left assigned (the
// collected answers must not be dropped).
func (s *Store) ExpireAssignments(maxAge time.Duration) ([]int, error) {
	if maxAge <= 0 {
		return nil, fmt.Errorf("%w: maxAge %v", ErrBadRequest, maxAge)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return nil, err
	}
	cutoff := s.clock().Add(-maxAge)
	var reopened []int
	for _, t := range s.tasks {
		if t.Status != TaskAssigned || len(t.Answers) > 0 {
			continue
		}
		if t.AssignedAt.After(cutoff) {
			continue
		}
		t.Status = TaskOpen
		t.Assigned = nil
		t.AssignedAt = time.Time{}
		reopened = append(reopened, t.ID)
	}
	sort.Ints(reopened)
	for _, id := range reopened {
		if err := s.logEvent(event{Kind: evReopen, Task: id}); err != nil {
			return reopened, err
		}
	}
	return reopened, nil
}

// reopenTask is the journal-replay form of one expiry.
func (s *Store) reopenTask(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return err
	}
	t, ok := s.tasks[id]
	if !ok {
		return fmt.Errorf("%w: task %d", ErrNotFound, id)
	}
	if t.Status != TaskAssigned || len(t.Answers) > 0 {
		return fmt.Errorf("%w: task %d is %v with %d answers", ErrBadState, id, t.Status, len(t.Answers))
	}
	t.Status = TaskOpen
	t.Assigned = nil
	t.AssignedAt = time.Time{}
	return s.logEvent(event{Kind: evReopen, Task: id})
}

// Resolve records feedback scores for the answers of an assigned task,
// moves it to TaskResolved, bumps the answerers' resolved counters and
// returns the final record. Scores for workers who did not answer are
// rejected.
func (s *Store) Resolve(taskID int, scores map[int]float64) (TaskRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealedErrLocked(); err != nil {
		return TaskRecord{}, err
	}
	t, ok := s.tasks[taskID]
	if !ok {
		return TaskRecord{}, fmt.Errorf("%w: task %d", ErrNotFound, taskID)
	}
	if t.Status != TaskAssigned {
		return TaskRecord{}, fmt.Errorf("%w: task %d is %v", ErrBadState, taskID, t.Status)
	}
	answered := make(map[int]int, len(t.Answers))
	for i, a := range t.Answers {
		answered[a.Worker] = i
	}
	for w := range scores {
		if _, ok := answered[w]; !ok {
			return TaskRecord{}, fmt.Errorf("%w: score for worker %d who did not answer task %d", ErrBadRequest, w, taskID)
		}
	}
	for w, sc := range scores {
		t.Answers[answered[w]].Score = sc
	}
	for _, a := range t.Answers {
		s.workers[a.Worker].Resolved++
	}
	t.Status = TaskResolved
	logScores := make(map[string]float64, len(scores))
	for w, sc := range scores {
		logScores[fmt.Sprint(w)] = sc
	}
	return cloneTask(t), s.logEvent(event{Kind: evResolve, Task: taskID, Scores: logScores})
}

func cloneTask(t *TaskRecord) TaskRecord {
	c := *t
	c.Tokens = append([]string(nil), t.Tokens...)
	c.Assigned = append([]int(nil), t.Assigned...)
	c.Answers = append([]Answer(nil), t.Answers...)
	return c
}

// snapshot is the persisted form of the store. AppliedForwards is the
// idempotency set for cross-shard skill-feedback forwards: without it
// a compaction would forget which forwards were folded and a retried
// leg could double-apply after restart.
type snapshot struct {
	Workers         []Worker     `json:"workers"`
	Tasks           []TaskRecord `json:"tasks"`
	NextTID         int          `json:"next_tid"`
	AppliedForwards []int        `json:"applied_forwards,omitempty"`
}

// Snapshot writes a consistent JSON snapshot of the database to w.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(w)
}

// snapshotLocked is Snapshot with s.mu already held (compaction holds
// the write lock so the snapshot and the journal rotation are one
// atomic cut).
func (s *Store) snapshotLocked(w io.Writer) error {
	snap := snapshot{NextTID: s.nextTID}
	for _, wk := range s.workers {
		snap.Workers = append(snap.Workers, *wk)
	}
	sort.Slice(snap.Workers, func(a, b int) bool { return snap.Workers[a].ID < snap.Workers[b].ID })
	for _, t := range s.tasks {
		snap.Tasks = append(snap.Tasks, cloneTask(t))
	}
	sort.Slice(snap.Tasks, func(a, b int) bool { return snap.Tasks[a].ID < snap.Tasks[b].ID })
	for id := range s.appliedForwards {
		snap.AppliedForwards = append(snap.AppliedForwards, id)
	}
	sort.Ints(snap.AppliedForwards)
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("crowddb: snapshot: %w", err)
	}
	return nil
}

// SnapshotFile writes a snapshot atomically and durably to path
// (write to a temp file in the same directory, fsync, rename, fsync
// the directory).
func (s *Store) SnapshotFile(path string) error {
	if err := writeFileAtomic(path, s.Snapshot); err != nil {
		return fmt.Errorf("crowddb: snapshot: %w", err)
	}
	return nil
}

// writeFileAtomic writes fill's output to path via temp+fsync+rename
// so readers only ever see a complete file, even across a crash.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir := dirOf(path)
	tmp, err := os.CreateTemp(dir, ".crowddb-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := fill(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Filesystems that cannot sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// RestoreSnapshot replaces the store contents with a snapshot read
// from r. The snapshot is validated before any state is replaced, so a
// corrupted snapshot leaves the store untouched.
func (s *Store) RestoreSnapshot(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("crowddb: restore: %w", err)
	}
	workers := make(map[int]*Worker, len(snap.Workers))
	for _, w := range snap.Workers {
		w := w
		if _, dup := workers[w.ID]; dup {
			return fmt.Errorf("crowddb: restore: duplicate worker %d", w.ID)
		}
		workers[w.ID] = &w
	}
	tasks := make(map[int]*TaskRecord, len(snap.Tasks))
	for _, t := range snap.Tasks {
		t := t
		if _, dup := tasks[t.ID]; dup {
			return fmt.Errorf("crowddb: restore: duplicate task %d", t.ID)
		}
		if t.ID >= snap.NextTID {
			return fmt.Errorf("crowddb: restore: task %d beyond next id %d", t.ID, snap.NextTID)
		}
		for _, w := range t.Assigned {
			if _, ok := workers[w]; !ok {
				return fmt.Errorf("crowddb: restore: task %d assigned to missing worker %d", t.ID, w)
			}
		}
		for _, a := range t.Answers {
			if _, ok := workers[a.Worker]; !ok {
				return fmt.Errorf("crowddb: restore: task %d answered by missing worker %d", t.ID, a.Worker)
			}
		}
		tasks[t.ID] = &t
	}
	forwards := make(map[int]bool, len(snap.AppliedForwards))
	for _, id := range snap.AppliedForwards {
		forwards[id] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers = workers
	s.tasks = tasks
	s.nextTID = snap.NextTID
	s.appliedForwards = forwards
	// A snapshot written before this node was sharded may leave nextTID
	// off this shard's stride; realign forward so freshly minted ids
	// stay on it.
	s.alignTIDLocked()
	return nil
}

// RestoreSnapshotFile reads a snapshot from path.
func (s *Store) RestoreSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("crowddb: restore: %w", err)
	}
	defer f.Close()
	return s.RestoreSnapshot(bufio.NewReader(f))
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

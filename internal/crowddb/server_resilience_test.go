package crowddb

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerSelectionsEndpoint: POST /api/v1/selections ranks crowds
// without storing anything — the pure read path that stays alive in
// degraded mode.
func TestServerSelectionsEndpoint(t *testing.T) {
	ts, mgr := serverFixture(t)
	before := mgr.Store().NumTasks()

	resp := postJSON(t, ts.URL+"/api/v1/selections", map[string]any{
		"tasks": []map[string]any{
			{"text": "how do b+ trees differ from b trees", "k": 2},
			{"text": "which database index fits range queries", "k": 1},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selections status = %d", resp.StatusCode)
	}
	sel := decode[SelectionsResponse](t, resp)
	if len(sel.Results) != 2 || sel.Model != "TDPM" {
		t.Fatalf("selections = %+v", sel)
	}
	if len(sel.Results[0].Workers) != 2 || len(sel.Results[1].Workers) != 1 {
		t.Fatalf("crowd sizes = %d, %d; want 2, 1", len(sel.Results[0].Workers), len(sel.Results[1].Workers))
	}
	if after := mgr.Store().NumTasks(); after != before {
		t.Fatalf("selections stored %d tasks; it must store none", after-before)
	}

	// Validation matches the batch endpoint.
	resp = postJSON(t, ts.URL+"/api/v1/selections", map[string]any{"tasks": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty selections batch = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerDegradedReadOnly: with the degraded check wired, mutations
// fail fast with the degraded_read_only code while selections and
// reads keep answering, and /readyz carries the mode detail.
func TestServerDegradedReadOnly(t *testing.T) {
	mgr, _ := managerFixture(t)
	srv := NewServer(mgr)
	var degraded atomic.Bool
	srv.SetDegradedCheck(degraded.Load)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	degraded.Store(true)
	// Mutations are refused before reaching any handler.
	resp := postJSON(t, ts.URL+"/api/v1/tasks", map[string]any{"text": "sealed", "k": 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation while degraded = %d, want 503", resp.StatusCode)
	}
	if env := decode[ErrorEnvelope](t, resp); env.Error.Code != "degraded_read_only" {
		t.Fatalf("error code = %q, want degraded_read_only", env.Error.Code)
	}
	// Selections still answer.
	resp = postJSON(t, ts.URL+"/api/v1/selections", map[string]any{
		"tasks": []map[string]any{{"text": "still ranking in degraded mode", "k": 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selections while degraded = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	// Plain reads still answer.
	r, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats while degraded = %d, want 200", r.StatusCode)
	}
	// /readyz stays ready (selections serve) but reports the mode.
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("readyz while degraded = %d, want 200", r.StatusCode)
	}
	if body := decode[map[string]string](t, r); body["mode"] != "degraded_read_only" {
		t.Fatalf("readyz body = %v, want mode detail", body)
	}

	degraded.Store(false)
	resp = postJSON(t, ts.URL+"/api/v1/tasks", map[string]any{"text": "unsealed again", "k": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutation after heal = %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerBodyCap: POST bodies over the cap get 413 with the
// request_too_large code instead of a connection reset or a 400.
func TestServerBodyCap(t *testing.T) {
	mgr, _ := managerFixture(t)
	srv := NewServer(mgr)
	srv.SetMaxBodyBytes(256)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	big := `{"text": "` + strings.Repeat("x", 1024) + `", "k": 1}`
	resp, err := http.Post(ts.URL+"/api/v1/tasks", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	if env := decode[ErrorEnvelope](t, resp); env.Error.Code != "request_too_large" {
		t.Fatalf("error code = %q, want request_too_large", env.Error.Code)
	}
	// A body under the cap still works.
	resp = postJSON(t, ts.URL+"/api/v1/tasks", map[string]any{"text": "small enough", "k": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small body = %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

// stallEngine parks until the request context expires — the handler
// honoring its server-side deadline budget.
type stallEngine struct{}

func (stallEngine) Execute(ctx context.Context, q string) (any, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestServerDeadlineBudget: a handler that overruns the server-side
// budget gets 503 deadline_exceeded (the client is still there, so a
// retry is correct), and the overrun registers with the admission
// controller as an overload signal.
func TestServerDeadlineBudget(t *testing.T) {
	mgr, _ := managerFixture(t)
	srv := NewServer(mgr)
	srv.SetQueryEngine(stallEngine{})
	srv.SetAdmission(AdmissionConfig{Initial: 8, Min: 1, Max: 8})
	srv.SetDeadlineBudgets(20*time.Millisecond, 20*time.Millisecond)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/api/v1/query", "application/json",
		strings.NewReader(`{"q":"SELECT CROWD FOR TASK 'x' LIMIT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overrun status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline_exceeded without Retry-After")
	}
	if env := decode[ErrorEnvelope](t, resp); env.Error.Code != "deadline_exceeded" {
		t.Fatalf("error code = %q, want deadline_exceeded", env.Error.Code)
	}

	r, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[MetricsSnapshot](t, r)
	if snap.DeadlineOverruns != 1 {
		t.Errorf("deadline overrun counter = %d, want 1", snap.DeadlineOverruns)
	}
	if snap.Admission == nil {
		t.Fatal("metrics missing the admission section")
	}
	if snap.Admission.DeadlineOverruns != 1 {
		t.Errorf("admission overruns = %d, want 1", snap.Admission.DeadlineOverruns)
	}
	// The AIMD controller shrank the limit below its ceiling.
	if snap.Admission.Limit >= 8 {
		t.Errorf("limit after overrun = %v, want < 8", snap.Admission.Limit)
	}
}

// TestServerMetricsAdmissionSection: the admission section appears
// once a limiter is installed, and shed requests split by class.
func TestServerMetricsAdmissionSection(t *testing.T) {
	mgr, _ := managerFixture(t)
	srv := NewServer(mgr)
	srv.SetQueryEngine(blockingEngine{entered: make(chan struct{}), release: make(chan struct{})})
	be := srv.query.(blockingEngine)
	srv.SetMaxInFlight(1)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/api/v1/query", "application/json",
			strings.NewReader(`{"q":"SELECT CROWD FOR TASK 'x' LIMIT 1"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-be.entered

	// One shed read. (A mutation would still fit the reserve slot, so
	// only reads shed at this occupancy — the priority contract.)
	r, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("read at capacity = %d, want 429", r.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/api/v1/tasks", map[string]any{"text": "reserve slot mutation", "k": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutation at read capacity = %d, want 201 via the reserve", resp.StatusCode)
	}
	resp.Body.Close()

	close(be.release)
	<-done
	m, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[MetricsSnapshot](t, m)
	if snap.ShedReads != 1 || snap.ShedMutations != 0 {
		t.Errorf("shed split = reads %d, mutations %d; want 1, 0", snap.ShedReads, snap.ShedMutations)
	}
	if snap.Admission == nil || snap.Admission.MaxLimit != 1 || snap.Admission.ShedReads != 1 {
		t.Errorf("admission section = %+v", snap.Admission)
	}
}

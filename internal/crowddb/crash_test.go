package crowddb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"crowdselect/internal/core"
	"crowdselect/internal/faultfs"
)

// cloneModel deep-copies a model through its serialized form, the same
// representation durability uses, so rounds of the crash test start
// from identical posteriors.
func cloneModel(t *testing.T, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := core.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// expTask is the acknowledged state of one task: only mutations whose
// call returned nil error are recorded here, so the expectation set is
// exactly what durability promises to preserve.
type expTask struct {
	text     string
	assigned []int
	answers  map[int]string
	scores   map[int]float64
	resolved bool
}

type expectations struct {
	tasks    map[int]*expTask
	presence map[int]bool // last acked presence override
	acked    int          // acked mutation count
}

// runCrashWorkload drives ≥500 mutations through the manager with a
// deterministic op sequence, compacting every compactEvery mutations,
// and stops at the first injected journal failure (the simulated
// process death). It returns the acked expectations and whether the
// workload crashed.
func runCrashWorkload(t *testing.T, rig *durableRig, compactEvery int) (*expectations, bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	exp := &expectations{tasks: make(map[int]*expTask), presence: make(map[int]bool)}
	workers := rig.db.Store().Workers()

	// crash classifies an op error: an injected journal failure ends
	// the workload; anything else is a test bug.
	crash := func(err error) bool {
		if err == nil {
			return false
		}
		if errors.Is(err, ErrJournal) {
			return true
		}
		t.Fatalf("workload hit non-journal error: %v", err)
		return true
	}

	lastCompact := 0
	for cycle := 0; cycle < 160; cycle++ {
		// Occasionally bounce a worker's presence (two mutations).
		if rng.Intn(5) == 0 {
			w := workers[rng.Intn(len(workers))].ID
			for _, online := range []bool{false, true} {
				if err := rig.db.Store().SetOnline(w, online); err != nil {
					if crash(err) {
						return exp, true
					}
				}
				exp.presence[w] = online
				exp.acked++
			}
		}

		text := fmt.Sprintf("crash round question %d about topic %d", cycle, rng.Intn(50))
		sub, err := rig.mgr.SubmitTask(context.Background(), text, 2)
		if crash(err) {
			return exp, true
		}
		et := &expTask{
			text:     text,
			assigned: append([]int(nil), sub.Workers...),
			answers:  make(map[int]string),
			scores:   make(map[int]float64),
		}
		exp.tasks[sub.Task.ID] = et
		exp.acked++

		for i, w := range sub.Workers {
			ans := fmt.Sprintf("answer %d from %d", i, w)
			if crash(rig.mgr.CollectAnswer(sub.Task.ID, w, ans)) {
				return exp, true
			}
			et.answers[w] = ans
			exp.acked++
		}

		scores := make(map[int]float64, len(sub.Workers))
		for _, w := range sub.Workers {
			scores[w] = float64(rng.Intn(6))
		}
		if _, err := rig.mgr.ResolveTask(context.Background(), sub.Task.ID, scores); crash(err) {
			return exp, true
		}
		for w, sc := range scores {
			et.scores[w] = sc
		}
		et.resolved = true
		exp.acked++

		if exp.acked-lastCompact >= compactEvery {
			if err := rig.db.Compact(); err != nil {
				t.Fatalf("compaction before any injected failure: %v", err)
			}
			lastCompact = exp.acked
		}
	}
	return exp, false
}

// assertRecovered checks every acked expectation against the
// recovered store.
func assertRecovered(t *testing.T, st *Store, exp *expectations) {
	t.Helper()
	for id, et := range exp.tasks {
		got, err := st.GetTask(id)
		if err != nil {
			t.Fatalf("acked task %d lost: %v", id, err)
		}
		if got.Text != et.text {
			t.Fatalf("task %d text %q, want %q", id, got.Text, et.text)
		}
		if len(got.Assigned) != len(et.assigned) {
			t.Fatalf("task %d assigned %v, want %v", id, got.Assigned, et.assigned)
		}
		for i, w := range et.assigned {
			if got.Assigned[i] != w {
				t.Fatalf("task %d assigned %v, want %v", id, got.Assigned, et.assigned)
			}
		}
		byWorker := make(map[int]Answer, len(got.Answers))
		for _, a := range got.Answers {
			byWorker[a.Worker] = a
		}
		for w, text := range et.answers {
			a, ok := byWorker[w]
			if !ok {
				t.Fatalf("task %d: acked answer from worker %d lost", id, w)
			}
			if a.Text != text {
				t.Fatalf("task %d worker %d answer %q, want %q", id, w, a.Text, text)
			}
		}
		if et.resolved {
			if got.Status != TaskResolved {
				t.Fatalf("acked resolved task %d recovered as %v", id, got.Status)
			}
			for w, sc := range et.scores {
				if byWorker[w].Score != sc {
					t.Fatalf("task %d worker %d score %v, want %v", id, w, byWorker[w].Score, sc)
				}
			}
		}
	}
	for w, online := range exp.presence {
		got, err := st.GetWorker(w)
		if err != nil {
			t.Fatal(err)
		}
		if got.Online != online {
			t.Errorf("worker %d presence %v, want acked %v", w, got.Online, online)
		}
	}
}

// TestCrashRecoveryLosesNothing is the acceptance-criteria test: a
// workload of ≥500 mutations with the journal writer killed at a
// random byte offset must recover from the data directory with zero
// acknowledged mutations lost and skill posteriors element-wise equal
// to the pre-crash model.
func TestCrashRecoveryLosesNothing(t *testing.T) {
	d, model := trainedFixture(t)

	// Calibration round: unlimited budget, measures total journal
	// traffic and doubles as the no-crash durability check.
	dir := t.TempDir()
	rig := openDurable(t, dir, d, cloneModel(t, model), Options{Sync: SyncAlways()})
	exp, crashed := runCrashWorkload(t, rig, 150)
	if crashed {
		t.Fatal("calibration round crashed without fault injection")
	}
	if exp.acked < 500 {
		t.Fatalf("workload produced only %d mutations, need ≥ 500", exp.acked)
	}
	totalBytes := int64(rig.db.Stats().BytesWritten)
	if totalBytes == 0 {
		t.Fatal("no journal bytes written")
	}
	preModel := rig.cm.Unwrap()
	if err := rig.db.Close(); err != nil {
		t.Fatal(err)
	}
	rec := openDurable(t, dir, d, nil, Options{Sync: SyncAlways()})
	assertRecovered(t, rec.db.Store(), exp)
	assertModelsEqual(t, preModel, rec.cm.Unwrap())
	if err := rec.db.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash rounds: the journal writer dies at a random offset inside
	// the measured traffic. The workload stops at the first injected
	// failure, like a killed process; recovery must preserve every
	// acked mutation and reproduce the posteriors exactly.
	budgets := rand.New(rand.NewSource(42))
	for round := 0; round < 3; round++ {
		round := round
		t.Run(fmt.Sprintf("crash_round_%d", round), func(t *testing.T) {
			// Cap below the calibrated traffic so the fault always fires.
			budget := faultfs.NewBudget(1 + budgets.Int63n(totalBytes*9/10))
			dir := t.TempDir()
			opts := Options{
				Sync: SyncAlways(),
				OpenJournalFile: func(path string) (JournalFile, error) {
					return faultfs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644, budget)
				},
			}
			rig := openDurable(t, dir, d, cloneModel(t, model), opts)
			exp, crashed := runCrashWorkload(t, rig, 150)
			if !crashed || !budget.Tripped() {
				t.Fatalf("fault did not fire (crashed=%v tripped=%v)", crashed, budget.Tripped())
			}
			preModel := rig.cm.Unwrap()
			// No Close: the process died. Reopen from disk alone.
			rec := openDurable(t, dir, d, nil, Options{Sync: SyncAlways()})
			defer rec.db.Close()
			assertRecovered(t, rec.db.Store(), exp)
			assertModelsEqual(t, preModel, rec.cm.Unwrap())
			if !rec.db.Stats().TornTailTruncated {
				t.Log("crash landed exactly on a record boundary; nothing torn")
			}
		})
	}
}

package crowddb

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Integrity digests (DESIGN.md §14). A digest is a deterministic
// SHA-256 fingerprint of everything the anti-entropy protocol must
// agree on at a replication position: the model's worker posteriors
// (the canonical Save bytes) and the store's snapshot (workers, tasks,
// applied-forward set), both bound to the tenant namespace. Two nodes
// of the same tenant at the same applied seq MUST produce the same
// combined digest — whether the state was reached live, by journal
// replay, by replication apply, or across a compaction — or one of
// them has silently diverged.

// digestPreimageVersion versions the combined-digest preimage; bump it
// if the hashed components or their framing ever change, so mixed
// fleets never compare digests computed under different rules.
const digestPreimageVersion = "crowd-digest/v1"

// Digest returns the hex SHA-256 of the store's canonical snapshot
// bytes (exactly what Snapshot writes): worker rows, task rows, next
// id and the applied-forward set, all in sorted order.
func (s *Store) Digest() (string, error) {
	h := sha256.New()
	if err := s.Snapshot(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// combineDigest binds the model and store component digests to the
// tenant namespace under a versioned preimage. Empty components (a
// selector with no model, a fresh store) participate as empty strings
// — still deterministic, still comparable.
func combineDigest(tenant, model, store string) string {
	h := sha256.New()
	io.WriteString(h, digestPreimageVersion+"\n")
	io.WriteString(h, tenant+"\n")
	io.WriteString(h, model+"\n")
	io.WriteString(h, store+"\n")
	return hex.EncodeToString(h.Sum(nil))
}

// modelDigester is the optional hook a selector implements to expose a
// canonical digest of its posteriors; *core.Model and
// *core.ConcurrentModel both do. Selectors without it (the baselines)
// contribute an empty model component.
type modelDigester interface {
	Digest() (string, error)
}

// DigestCut is one consistent integrity fingerprint: the combined
// digest, its components, and the exact replication position it was
// computed at. Serves as the GET /api/v1/digest response and as the
// payload replication heartbeats compare.
type DigestCut struct {
	Tenant string `json:"tenant"`
	Seq    int64  `json:"seq"`
	Bytes  int64  `json:"bytes,omitempty"`
	Digest string `json:"digest"`
	Model  string `json:"model_digest,omitempty"`
	Store  string `json:"store_digest,omitempty"`
}

// DigestFunc produces a consistent digest cut; the server's digest
// endpoint and the replication heartbeat both call through one.
type DigestFunc func() (DigestCut, error)

// DigestCutter computes digest cuts over a DB + Manager pair with a
// position-keyed cache: while no records commit, repeated cuts (every
// idle heartbeat, every /api/v1/digest poll) cost one mutex hit, not a
// model serialization.
type DigestCutter struct {
	db  *DB
	mgr *Manager

	mu     sync.Mutex
	cached DigestCut
	valid  bool
	// recent retains the last digestCutKeep cuts keyed by seq, so a
	// caller holding a pinned position (a backup stream, a drill
	// asserting determinism) can re-read the digest at that exact seq
	// after the head has moved past it. order tracks insertion for
	// eviction.
	recent map[int64]DigestCut
	order  []int64
}

// digestCutKeep bounds how many past cuts a cutter retains for CutAt.
const digestCutKeep = 32

// NewDigestCutter builds a cutter over db and mgr (the manager whose
// selector carries the model state journaled into db).
func NewDigestCutter(db *DB, mgr *Manager) *DigestCutter {
	return &DigestCutter{db: db, mgr: mgr}
}

// Invalidate drops the cached cut. Call after any state change that
// does not advance the replication position — a follower re-bootstrap
// adopts a whole new snapshot at a position it may have already cut.
func (c *DigestCutter) Invalidate() {
	c.mu.Lock()
	c.valid = false
	c.recent = nil
	c.order = nil
	c.mu.Unlock()
}

// Cut computes (or returns the cached) digest at the current applied
// position. The cut quiesces resolves and read-locks the store so the
// model hash, the store hash and the replication position all observe
// the same instant — the same cut discipline compaction uses.
func (c *DigestCutter) Cut() (DigestCut, error) {
	seq, _ := c.db.ReplicationHead()
	c.mu.Lock()
	if c.valid && c.cached.Seq == seq {
		cut := c.cached
		c.mu.Unlock()
		return cut, nil
	}
	c.mu.Unlock()
	var cut DigestCut
	err := c.mgr.Quiesce(func() error {
		s := c.db.store
		s.mu.RLock()
		defer s.mu.RUnlock()
		cut.Seq, cut.Bytes = c.db.ReplicationHead()
		cut.Tenant = s.tenant
		if cut.Tenant == "" {
			cut.Tenant = DefaultTenant
		}
		if md, ok := c.mgr.sel.(modelDigester); ok {
			d, err := md.Digest()
			if err != nil {
				return err
			}
			cut.Model = d
		}
		h := sha256.New()
		if err := s.snapshotLocked(h); err != nil {
			return err
		}
		cut.Store = hex.EncodeToString(h.Sum(nil))
		cut.Digest = combineDigest(cut.Tenant, cut.Model, cut.Store)
		return nil
	})
	if err != nil {
		return DigestCut{}, err
	}
	c.mu.Lock()
	c.cached, c.valid = cut, true
	c.retainLocked(cut)
	c.mu.Unlock()
	return cut, nil
}

// retainLocked records cut in the bounded seq-keyed history. Caller
// holds c.mu.
func (c *DigestCutter) retainLocked(cut DigestCut) {
	if _, ok := c.recent[cut.Seq]; ok {
		return
	}
	if c.recent == nil {
		c.recent = make(map[int64]DigestCut, digestCutKeep)
	}
	for len(c.order) >= digestCutKeep {
		delete(c.recent, c.order[0])
		c.order = c.order[1:]
	}
	c.recent[cut.Seq] = cut
	c.order = append(c.order, cut.Seq)
}

// CutAt returns the digest cut at an exact seq: the retained cut if
// one was taken there, or a fresh cut if seq is still the applied
// head. Digest determinism (DESIGN §14) makes the answer stable — the
// digest at a pinned seq never changes, no matter how many mutations
// race past it. A seq never cut at and no longer current reports an
// error rather than a guess.
func (c *DigestCutter) CutAt(seq int64) (DigestCut, error) {
	c.mu.Lock()
	if cut, ok := c.recent[seq]; ok {
		c.mu.Unlock()
		return cut, nil
	}
	c.mu.Unlock()
	cut, err := c.Cut()
	if err != nil {
		return DigestCut{}, err
	}
	if cut.Seq != seq {
		return DigestCut{}, fmt.Errorf("crowddb: no digest cut retained at seq %d (head is %d)", seq, cut.Seq)
	}
	return cut, nil
}

// Func adapts the cutter to a DigestFunc.
func (c *DigestCutter) Func() DigestFunc { return c.Cut }

// handleDigest serves GET /api/v1/digest: the node's current digest
// cut for the request's tenant. 404 when the node has no digest
// provider wired (no durable store behind the server).
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	fn := s.digestFor(r)
	if fn == nil {
		httpError(w, http.StatusNotFound, errors.New("no integrity digest available on this node"))
		return
	}
	cut, err := fn()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, cut)
}

package crowddb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"crowdselect/internal/core"
)

// ErrReplicaDiverged means the primary refused this follower's resume
// position: within the same history the follower claims records the
// primary never committed. That happens when the follower was itself
// promoted earlier, or the primary lost acked state; the replica stops
// streaming (still serving reads) and an operator must decide which
// lineage survives.
var ErrReplicaDiverged = errors.New("crowddb: replica diverged from primary")

// ErrPromotionInProgress is returned to the loser of a promotion
// race: another Promote call holds the flip and has not finished yet.
// Once the winner succeeds, further calls are idempotent and return
// nil; a failed attempt releases the flip so a later call can retry.
var ErrPromotionInProgress = errors.New("crowddb: promotion already in progress")

// ReplicaBuilder constructs the serving stack over a bootstrapped (or
// recovered) store: load the dataset for its vocabulary, wrap the
// model for concurrent serving, and return the manager. It keeps
// crowddb free of a dependency on the corpus package.
type ReplicaBuilder func(datasetPath string, model *core.Model, store *Store) (*Manager, *core.ConcurrentModel, error)

// ReplicaOptions configures StartReplica.
type ReplicaOptions struct {
	// Primary is the primary's base URL (e.g. http://host:8080).
	Primary string
	// Dir is the follower's own data directory: it keeps a full
	// generation + journal lifecycle so it can recover and resume.
	Dir string
	// DB configures the follower's durability layer.
	DB Options
	// Build assembles manager and concurrent model after bootstrap or
	// local recovery. Required.
	Build ReplicaBuilder
	// HTTPClient overrides the streaming client. The default has no
	// overall timeout (the stream is long-lived by design).
	HTTPClient *http.Client
	// ReconnectBackoff is the initial delay between connection
	// attempts (default 250ms, doubling to a 5s cap).
	ReconnectBackoff time.Duration
	// FleetToken authenticates the stream dial when the primary gates
	// its /api/v1/replication/* surface (Server.SetFleetToken). Empty
	// for open fleets.
	FleetToken string
	// Tenant scopes the replica to one tenant namespace (DESIGN §13):
	// the stream dials /api/v1/t/{name}/replication/stream and the
	// local store is stamped with the name, so records are journaled —
	// and cross-checked — under the right namespace. Empty or
	// DefaultTenant follows the primary's default tenant on the
	// un-prefixed path. A multi-tenant follower runs one Replica per
	// tenant, each with its own Dir.
	Tenant string
	// Logf receives lifecycle notices. nil is silent.
	Logf func(format string, args ...any)
}

// Replica is a warm standby: it maintains a durable copy of the
// primary's crowd database and model by applying the replicated
// journal through the same paths boot recovery uses, serves read-only
// selections from the continuously updated model, and can be promoted
// to primary once caught up.
type Replica struct {
	opts ReplicaOptions
	db   *DB
	mgr  *Manager
	cm   *core.ConcurrentModel

	mu           sync.Mutex
	headSeq      int64 // primary's head, as last advertised
	headBytes    int64
	appliedSeq   int64 // last record fully applied, side effects included
	appliedBytes int64 // primary's byte count at our applied position
	lastContact  time.Time
	connected    bool
	fatal        error // divergence; set once, stream stays down

	reconnects    atomic.Int64
	framesApplied atomic.Int64
	bootstraps    atomic.Int64

	// Divergence state machine (DESIGN §14): a heartbeat digest that
	// disagrees with ours at the same applied seq quarantines the
	// replica (diverged: refuses promotion) and forces the next dial to
	// request a bootstrap; a completed re-bootstrap is the repair.
	diverged    atomic.Bool
	divergences atomic.Int64
	repairs     atomic.Int64
	forceBoot   bool // next dial requests a bootstrap (guarded by mu)

	cutterOnce sync.Once
	cutter     *DigestCutter

	promoted atomic.Bool // set only once a promotion SUCCEEDS
	promBusy bool        // a Promote call is in flight (guarded by mu)
	cancel   context.CancelFunc
	done     chan struct{}
}

// errDigestMismatch ends a consume loop after a heartbeat digest
// disagreed: the stream reconnects with a forced bootstrap. Internal —
// distinct from ErrReplicaDiverged, which is fatal on the dial path.
var errDigestMismatch = errors.New("crowddb: heartbeat digest mismatch")

// StartReplica opens (or re-opens) the follower's data directory and
// starts streaming from the primary. A fresh directory requires the
// primary to be reachable now — the initial bootstrap is synchronous,
// so a nil error means the replica is already serving real state. A
// restored directory recovers locally first and catches up in the
// background, so a follower can restart while the primary is down.
func StartReplica(opts ReplicaOptions) (*Replica, error) {
	if opts.Primary == "" {
		return nil, errors.New("crowddb: replica needs a primary URL")
	}
	if opts.Dir == "" {
		return nil, errors.New("crowddb: replica needs a data directory")
	}
	if opts.Build == nil {
		return nil, errors.New("crowddb: replica needs a builder")
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.ReconnectBackoff <= 0 {
		opts.ReconnectBackoff = 250 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Tenant != "" && !ValidTenantName(opts.Tenant) {
		return nil, fmt.Errorf("crowddb: invalid replica tenant %q", opts.Tenant)
	}
	db, err := Open(opts.Dir, opts.DB)
	if err != nil {
		return nil, err
	}
	if opts.Tenant != "" {
		// Stamp the namespace before any replay or append, so recovery
		// cross-checks records and re-journaled frames carry the name.
		db.Store().SetTenant(opts.Tenant)
	}
	r := &Replica{opts: opts, db: db, done: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	var st *replStream
	if db.Fresh() {
		st, err = r.dial(ctx, 0, "", true)
		if err == nil {
			err = r.bootstrap(st, true)
		}
		if err != nil {
			if st != nil {
				st.Close()
			}
			cancel()
			db.Close()
			return nil, fmt.Errorf("crowddb: replica bootstrap: %w", err)
		}
	} else {
		model, err := db.LoadModel()
		if err == nil {
			r.mgr, r.cm, err = opts.Build(db.DatasetPath(), model, db.Store())
		}
		if err == nil {
			db.SetModelSnapshotter(r.cm.Save)
			db.SetQuiescer(r.mgr.Quiesce)
			err = db.Recover(r.mgr.ApplySkillFeedback)
		}
		if err != nil {
			cancel()
			db.Close()
			return nil, err
		}
		// Recovery replayed the journal tail through the manager, so
		// everything in the local journal is fully applied.
		r.appliedSeq, r.appliedBytes = db.ReplicationHead()
	}
	go r.run(ctx, st)
	return r, nil
}

// DB exposes the follower's durability layer (stats, compaction,
// shutdown). The caller owns closing it after Stop.
func (r *Replica) DB() *DB { return r.db }

// Manager exposes the serving stack over the replicated state; wire it
// into a Server for read-only selections.
func (r *Replica) Manager() *Manager { return r.mgr }

// Model exposes the continuously updated concurrent model.
func (r *Replica) Model() *core.ConcurrentModel { return r.cm }

// Err reports a permanent streaming failure (ErrReplicaDiverged), or
// nil while the replica is healthy or merely reconnecting.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fatal
}

// digestCutter lazily builds the replica's own cutter; mgr and db are
// both set before run starts, so any later caller sees a stable pair.
func (r *Replica) digestCutter() *DigestCutter {
	r.cutterOnce.Do(func() { r.cutter = NewDigestCutter(r.db, r.mgr) })
	return r.cutter
}

// Digest computes the replica's digest cut at its applied position —
// the /api/v1/digest provider on a follower node.
func (r *Replica) Digest() (DigestCut, error) { return r.digestCutter().Cut() }

// Diverged reports whether the replica is quarantined by a digest
// mismatch (refusing promotion, awaiting re-bootstrap repair).
func (r *Replica) Diverged() bool { return r.diverged.Load() }

// markDiverged quarantines the replica and arms the forced-bootstrap
// repair.
func (r *Replica) markDiverged(seq int64, want, got string) {
	if r.diverged.CompareAndSwap(false, true) {
		r.divergences.Add(1)
	}
	r.mu.Lock()
	r.forceBoot = true
	r.mu.Unlock()
	r.opts.Logf("crowddb: replica: digest mismatch at record %d (primary %s, local %s); quarantined, forcing re-bootstrap",
		seq, want, got)
}

// Status reports role, position and lag for /readyz and metrics.
func (r *Replica) Status() ReplicationStatus {
	r.mu.Lock()
	applied := r.appliedSeq
	head, headBytes, appliedBytes := r.headSeq, r.headBytes, r.appliedBytes
	connected, lastContact := r.connected, r.lastContact
	r.mu.Unlock()
	if r.promoted.Load() {
		// A promoted node journals its own mutations; the journal head
		// is the applied position again.
		applied, _ = r.db.ReplicationHead()
	}
	if applied > head {
		head = applied
	}
	role := RoleReplica
	if r.promoted.Load() {
		role = RolePrimary
	}
	lag := ReplicationLag{Records: head - applied, Bytes: maxInt64(0, headBytes-appliedBytes)}
	if !lastContact.IsZero() {
		lag.Seconds = time.Since(lastContact).Seconds()
	}
	return ReplicationStatus{
		Role:          role,
		FencingEpoch:  r.db.FencingEpoch(),
		Primary:       r.opts.Primary,
		Connected:     connected,
		History:       r.db.ReplicationHistory(),
		AppliedSeq:    applied,
		HeadSeq:       head,
		HeadBytes:     headBytes,
		Reconnects:    r.reconnects.Load(),
		FramesApplied: r.framesApplied.Load(),
		Bootstraps:    r.bootstraps.Load(),
		Lag:           &lag,
		Diverged:      r.diverged.Load(),
		Divergences:   r.divergences.Load(),
		Repairs:       r.repairs.Load(),
	}
}

// Promote seals the stream and flips this node to primary: the stream
// is cancelled, the apply loop drains (every record read from the
// primary is applied inline, so drained means replayed to tail), the
// fencing epoch is bumped past every epoch this node has seen — the
// write that deposes the old primary (DESIGN §12) — and a fresh
// generation checkpoints the promoted state. The caller (server or
// daemon) flips the HTTP role afterwards.
//
// Exactly one caller runs a promotion at a time: concurrent calls
// receive ErrPromotionInProgress while an attempt is in flight, and
// nil once one has succeeded (idempotent thereafter). Only success is
// cached — a failed attempt (ctx deadline while draining, checkpoint
// error) releases the flip so a later Promote retries from scratch;
// the shard can still heal after one bad attempt.
func (r *Replica) Promote(ctx context.Context) error {
	if r.promoted.Load() {
		return nil
	}
	if r.diverged.Load() {
		// A quarantined replica's state is known-wrong: promoting it
		// would crown the divergence. Repair (re-bootstrap) clears this.
		return fmt.Errorf("%w: digest mismatch with primary, awaiting re-bootstrap repair", ErrReplicaDiverged)
	}
	r.mu.Lock()
	if r.promBusy {
		r.mu.Unlock()
		return ErrPromotionInProgress
	}
	r.promBusy = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.promBusy = false
		r.mu.Unlock()
	}()
	if r.promoted.Load() {
		return nil
	}
	if err := r.promote(ctx); err != nil {
		return err
	}
	r.promoted.Store(true)
	return nil
}

func (r *Replica) promote(ctx context.Context) error {
	r.cancel()
	select {
	case <-r.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	epoch := max(r.db.FencingEpoch(), r.db.FencingObserved()) + 1
	if err := r.db.SetFencingEpoch(epoch); err != nil {
		return fmt.Errorf("crowddb: promote fencing epoch: %w", err)
	}
	if err := r.db.Compact(); err != nil {
		return fmt.Errorf("crowddb: promote checkpoint: %w", err)
	}
	applied, _ := r.db.ReplicationHead()
	r.opts.Logf("crowddb: replica promoted to primary at record %d (history %s, fencing epoch %d)",
		applied, r.db.ReplicationHistory(), epoch)
	return nil
}

// Stop cancels streaming and waits for the apply loop to exit. It does
// not close the DB; pair with DB().Close().
func (r *Replica) Stop() {
	r.cancel()
	<-r.done
}

// Close stops streaming and closes the follower's data directory.
func (r *Replica) Close() error {
	r.Stop()
	return r.db.Close()
}

// replStream is one open stream: the response body, a frame cursor,
// and the primary's hello.
type replStream struct {
	body  io.ReadCloser
	off   int64
	hello replHello
}

func (st *replStream) next() (typ byte, payload []byte, err error) {
	typ, payload, n, err := readReplFrame(st.body, st.off)
	st.off += n
	return typ, payload, err
}

func (st *replStream) Close() { st.body.Close() }

// dial opens the stream and reads the hello frame.
func (r *Replica) dial(ctx context.Context, from int64, history string, boot bool) (*replStream, error) {
	q := url.Values{}
	q.Set("from", fmt.Sprintf("%d", from))
	if history != "" {
		q.Set("history", history)
		// Carry our fencing knowledge: a source that has been deposed
		// (our observed epoch exceeds its own) seals itself on sight.
		q.Set("epoch", fmt.Sprintf("%d", max(r.db.FencingEpoch(), r.db.FencingObserved())))
	}
	if boot {
		q.Set("boot", "1")
	}
	path := "/api/v1/replication/stream"
	if r.opts.Tenant != "" && r.opts.Tenant != DefaultTenant {
		path = "/api/v1/t/" + r.opts.Tenant + "/replication/stream"
	}
	u := r.opts.Primary + path + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if r.opts.FleetToken != "" {
		req.Header.Set("Authorization", "Bearer "+r.opts.FleetToken)
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		var env ErrorEnvelope
		_ = json.Unmarshal(body, &env)
		if resp.StatusCode == http.StatusConflict && env.Error.Code == codeReplicaDiverged {
			return nil, fmt.Errorf("%w: %s", ErrReplicaDiverged, env.Error.Message)
		}
		return nil, fmt.Errorf("crowddb: replication stream refused: %s (%s)", resp.Status, env.Error.Message)
	}
	st := &replStream{body: resp.Body}
	typ, payload, err := st.next()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("crowddb: replication hello: %w", err)
	}
	if typ != frameHello {
		st.Close()
		return nil, fmt.Errorf("crowddb: replication stream began with frame type %d, want hello", typ)
	}
	if err := json.Unmarshal(payload, &st.hello); err != nil {
		st.Close()
		return nil, fmt.Errorf("crowddb: replication hello: %w", err)
	}
	return st, nil
}

// bootstrap consumes the dataset/model/snapshot frames at the head of
// st and installs them. fresh means the local directory is empty (the
// StartReplica path: build the stack and Begin); otherwise this is a
// live re-bootstrap after falling behind the primary's compaction: the
// store and model are swapped in place under their own locks and a
// compaction checkpoints the adopted state as a new local generation.
func (r *Replica) bootstrap(st *replStream, fresh bool) error {
	var model *core.Model
	var snap replSnapshotMsg
	for {
		typ, payload, err := st.next()
		if err != nil {
			return err
		}
		if typ == frameDataset {
			if err := os.WriteFile(r.db.DatasetPath(), payload, 0o644); err != nil {
				return err
			}
			continue
		}
		if typ == frameModel {
			if model, err = core.LoadModel(bytes.NewReader(payload)); err != nil {
				return fmt.Errorf("bootstrap model: %w", err)
			}
			continue
		}
		if typ == frameSnapshot {
			if err := json.Unmarshal(payload, &snap); err != nil {
				return fmt.Errorf("bootstrap snapshot: %w", err)
			}
			break
		}
		return fmt.Errorf("unexpected frame type %d during bootstrap", typ)
	}
	if model == nil {
		return errors.New("bootstrap stream carried no model checkpoint")
	}
	if err := r.db.Store().RestoreSnapshot(bytes.NewReader(snap.Store)); err != nil {
		return fmt.Errorf("bootstrap snapshot: %w", err)
	}
	if fresh {
		mgr, cm, err := r.opts.Build(r.db.DatasetPath(), model, r.db.Store())
		if err != nil {
			return err
		}
		r.mgr, r.cm = mgr, cm
		r.db.SetModelSnapshotter(cm.Save)
		r.db.SetQuiescer(mgr.Quiesce)
		r.db.seedReplication(st.hello.History, snap.Seq, snap.Bytes, st.hello.FencingEpoch)
		if err := r.db.Begin(); err != nil {
			return err
		}
	} else {
		r.cm.Replace(model)
		r.db.seedReplication(st.hello.History, snap.Seq, snap.Bytes, st.hello.FencingEpoch)
		if err := r.db.Compact(); err != nil {
			return err
		}
	}
	r.bootstraps.Add(1)
	r.mu.Lock()
	r.headSeq, r.headBytes = st.hello.Seq, st.hello.Bytes
	r.appliedSeq = snap.Seq
	r.appliedBytes = snap.Bytes
	r.lastContact = time.Now()
	r.forceBoot = false
	r.mu.Unlock()
	// The adopted snapshot replaces local state wholesale — possibly at
	// a position the cutter already cached a digest for — so the cache
	// must not survive the swap.
	r.digestCutter().Invalidate()
	if r.diverged.CompareAndSwap(true, false) {
		r.repairs.Add(1)
		r.opts.Logf("crowddb: replica: divergence repaired by re-bootstrap at record %d", snap.Seq)
	}
	r.opts.Logf("crowddb: replica bootstrapped at record %d of history %s (head %d)", snap.Seq, st.hello.History, st.hello.Seq)
	return nil
}

// run is the streaming loop: consume the open stream, reconnect with
// backoff from the applied position, re-bootstrap when the primary
// says our position predates its oldest generation, stop on promotion
// or divergence.
func (r *Replica) run(ctx context.Context, st *replStream) {
	defer close(r.done)
	defer r.setConnected(false)
	backoff := r.opts.ReconnectBackoff
	for {
		if ctx.Err() != nil || r.promoted.Load() {
			if st != nil {
				st.Close()
			}
			return
		}
		if st == nil {
			applied, _ := r.db.ReplicationHead()
			r.mu.Lock()
			boot := r.forceBoot
			r.mu.Unlock()
			var err error
			st, err = r.dial(ctx, applied, r.db.ReplicationHistory(), boot)
			if err != nil {
				if errors.Is(err, ErrReplicaDiverged) {
					r.mu.Lock()
					r.fatal = err
					r.mu.Unlock()
					r.opts.Logf("crowddb: replica: %v; streaming stopped (reads still served)", err)
					return
				}
				if ctx.Err() == nil {
					r.opts.Logf("crowddb: replica: connect: %v (retrying in %s)", err, backoff)
				}
				r.sleep(ctx, backoff)
				backoff = minDuration(backoff*2, 5*time.Second)
				continue
			}
			backoff = r.opts.ReconnectBackoff
			if st.hello.Bootstrap {
				if err := r.bootstrap(st, false); err != nil {
					r.opts.Logf("crowddb: replica: re-bootstrap: %v", err)
					st.Close()
					st = nil
					r.sleep(ctx, backoff)
					continue
				}
			} else {
				// Same history resume: refuse a deposed primary (its
				// epoch is below one we have observed — following it
				// would replay a fenced lineage), adopt a newer epoch.
				if st.hello.FencingEpoch < r.db.FencingObserved() {
					r.opts.Logf("crowddb: replica: primary at fencing epoch %d is deposed (observed %d); not following",
						st.hello.FencingEpoch, r.db.FencingObserved())
					st.Close()
					st = nil
					r.sleep(ctx, backoff)
					backoff = minDuration(backoff*2, 5*time.Second)
					continue
				}
				if st.hello.FencingEpoch > r.db.FencingEpoch() {
					_ = r.db.SetFencingEpoch(st.hello.FencingEpoch)
				}
			}
		}
		r.setConnected(true)
		r.observeHead(st.hello.Seq, st.hello.Bytes)
		err := r.consume(ctx, st)
		st.Close()
		st = nil
		r.setConnected(false)
		if ctx.Err() != nil || r.promoted.Load() {
			return
		}
		r.opts.Logf("crowddb: replica: stream ended: %v; reconnecting", err)
		r.reconnects.Add(1)
		r.sleep(ctx, backoff)
	}
}

// consume applies frames until the stream errors or the context ends.
func (r *Replica) consume(ctx context.Context, st *replStream) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		typ, payload, err := st.next()
		if err != nil {
			return err
		}
		switch typ {
		case frameRecord:
			var msg replRecordMsg
			if err := json.Unmarshal(payload, &msg); err != nil {
				return fmt.Errorf("record frame: %w", err)
			}
			applied, _ := r.db.ReplicationHead()
			if msg.Seq <= applied {
				continue // overlap between the file replay and the live tail
			}
			if msg.Seq != applied+1 {
				return fmt.Errorf("record gap: applied %d, received %d", applied, msg.Seq)
			}
			var e event
			if err := json.Unmarshal(msg.Event, &e); err != nil {
				return fmt.Errorf("record %d: %w", msg.Seq, err)
			}
			if err := r.mgr.applyReplicatedEvent(e); err != nil {
				return fmt.Errorf("apply record %d: %w", msg.Seq, err)
			}
			r.framesApplied.Add(1)
			r.observeApplied(msg.Seq, msg.Bytes)
		case frameHeartbeat:
			var hb replHeartbeat
			if err := json.Unmarshal(payload, &hb); err != nil {
				return fmt.Errorf("heartbeat frame: %w", err)
			}
			r.observeHead(hb.Seq, hb.Bytes)
			if hb.Digest != "" && !r.promoted.Load() {
				// Compare only when fully applied to the heartbeat's cut:
				// this goroutine is the sole applier, so applied == hb.Seq
				// means our state claims to equal the primary's cut state.
				if applied, _ := r.db.ReplicationHead(); applied == hb.Seq {
					cut, err := r.digestCutter().Cut()
					if err != nil {
						return fmt.Errorf("digest cut at record %d: %w", hb.Seq, err)
					}
					if cut.Digest != hb.Digest {
						r.markDiverged(hb.Seq, hb.Digest, cut.Digest)
						return errDigestMismatch
					}
				}
			}
		default:
			return fmt.Errorf("unexpected frame type %d mid-stream", typ)
		}
	}
}

func (r *Replica) observeApplied(seq, bytes int64) {
	r.mu.Lock()
	if seq > r.headSeq {
		r.headSeq = seq
	}
	if bytes > r.headBytes {
		r.headBytes = bytes
	}
	r.appliedSeq = seq
	r.appliedBytes = bytes
	r.lastContact = time.Now()
	r.mu.Unlock()
}

func (r *Replica) observeHead(seq, bytes int64) {
	r.mu.Lock()
	if seq > r.headSeq {
		r.headSeq = seq
	}
	if bytes > r.headBytes {
		r.headBytes = bytes
	}
	r.lastContact = time.Now()
	r.mu.Unlock()
}

func (r *Replica) setConnected(c bool) {
	r.mu.Lock()
	r.connected = c
	r.mu.Unlock()
}

func (r *Replica) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

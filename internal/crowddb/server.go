package crowddb

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// Server exposes the crowd manager over HTTP:
//
//	POST /api/tasks                     {"text": "...", "k": 3}
//	GET  /api/tasks/{id}
//	POST /api/tasks/{id}/answers        {"worker": 2, "answer": "..."}
//	POST /api/tasks/{id}/feedback       {"scores": {"2": 4}}
//	GET  /api/workers/{id}
//	POST /api/workers/{id}/presence     {"online": false}
//	GET  /api/stats
//	GET  /api/metrics
//
// Every request passes through a recovery/metrics/logging middleware:
// handler panics become 500 responses instead of killing the
// connection, and per-endpoint counts, error counts and latency
// quantiles accumulate for GET /api/metrics.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	query   QueryEngine // optional: POST /api/query
	metrics *Metrics
	logf    func(format string, args ...any) // nil: quiet
}

// QueryEngine executes crowdql statements; *crowdql.Engine satisfies
// it. The indirection keeps crowddb free of a dependency on the query
// package.
type QueryEngine interface {
	Execute(q string) (any, error)
}

// NewServer wraps a manager.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), metrics: NewMetrics()}
	s.mux.HandleFunc("/api/tasks", s.handleTasks)
	s.mux.HandleFunc("/api/tasks/", s.handleTaskSubtree)
	s.mux.HandleFunc("/api/workers/", s.handleWorkerSubtree)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	return s
}

// SetQueryEngine enables POST /api/query {"q": "SELECT ..."}.
func (s *Server) SetQueryEngine(e QueryEngine) { s.query = e }

// SetLogger installs a request/panic log sink (log.Printf shaped).
// The default is silent.
func (s *Server) SetLogger(logf func(format string, args ...any)) { s.logf = logf }

// Metrics exposes the server's metrics registry, e.g. for logging a
// final snapshot at shutdown.
func (s *Server) Metrics() *Metrics { return s.metrics }

type queryRequest struct {
	Q string `json:"q"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if s.query == nil {
		httpError(w, http.StatusNotImplemented, errors.New("query engine not configured"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	res, err := s.query.Execute(req.Q)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// ServeHTTP implements http.Handler. It is the middleware shell:
// route, then record status/latency per endpoint and turn handler
// panics into 500s.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if p := recover(); p != nil {
			if s.logf != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			}
			if !sw.wrote {
				httpError(sw, http.StatusInternalServerError, errors.New("internal server error"))
			}
		}
		status := sw.status()
		s.metrics.Observe(endpointLabel(r), status, time.Since(start))
		if s.logf != nil {
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond))
		}
	}()
	s.mux.ServeHTTP(sw, r)
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// endpointLabel normalizes a request to its route pattern — numeric
// path segments collapse to {id} so /api/tasks/17/feedback and
// /api/tasks/99/feedback share one metrics series.
func endpointLabel(r *http.Request) string {
	segs := strings.Split(r.URL.Path, "/")
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		if _, err := strconv.Atoi(seg); err == nil {
			segs[i] = "{id}"
		}
	}
	return r.Method + " " + strings.Join(segs, "/")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

type submitRequest struct {
	Text string `json:"text"`
	K    int    `json:"k"`
}

type submitResponse struct {
	TaskID  int    `json:"task_id"`
	Workers []int  `json:"workers"`
	Model   string `json:"model"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty task text"))
		return
	}
	sub, err := s.mgr.SubmitTask(req.Text, req.K)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, submitResponse{
		TaskID:  sub.Task.ID,
		Workers: sub.Workers,
		Model:   s.mgr.SelectorName(),
	})
}

type answerRequest struct {
	Worker int    `json:"worker"`
	Answer string `json:"answer"`
}

type feedbackRequest struct {
	Scores map[string]float64 `json:"scores"`
}

func (s *Server) handleTaskSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/tasks/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad task id %q", parts[0]))
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		task, err := s.mgr.Store().GetTask(id)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, task)
	case len(parts) == 2 && parts[1] == "answers" && r.Method == http.MethodPost:
		var req answerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mgr.CollectAnswer(id, req.Worker, req.Answer); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req feedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		scores := make(map[int]float64, len(req.Scores))
		for k, v := range req.Scores {
			wid, err := strconv.Atoi(k)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", k))
				return
			}
			scores[wid] = v
		}
		rec, err := s.mgr.ResolveTask(id, scores)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

type presenceRequest struct {
	Online bool `json:"online"`
}

func (s *Server) handleWorkerSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", parts[0]))
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		worker, err := s.mgr.Store().GetWorker(id)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, worker)
	case len(parts) == 2 && parts[1] == "presence" && r.Method == http.MethodPost:
		var req presenceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mgr.Store().SetOnline(id, req.Online); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

type statsResponse struct {
	Workers  int    `json:"workers"`
	Online   int    `json:"online"`
	Tasks    int    `json:"tasks"`
	Open     int    `json:"open"`
	Assigned int    `json:"assigned"`
	Resolved int    `json:"resolved"`
	Model    string `json:"model"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	st := s.mgr.Store()
	writeJSON(w, http.StatusOK, statsResponse{
		Workers:  st.NumWorkers(),
		Online:   len(st.OnlineWorkers()),
		Tasks:    st.NumTasks(),
		Open:     len(st.ListTasks(TaskOpen)),
		Assigned: len(st.ListTasks(TaskAssigned)),
		Resolved: len(st.ListTasks(TaskResolved)),
		Model:    s.mgr.SelectorName(),
	})
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadState), errors.Is(err, ErrNotAsked),
		errors.Is(err, ErrDuplicate), errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

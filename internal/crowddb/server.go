package crowddb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Server exposes the crowd manager over a versioned HTTP API:
//
//	POST /api/v1/tasks                     {"text": "...", "k": 3}
//	POST /api/v1/tasks:batch               {"tasks": [{"text": "...", "k": 3}, ...]}
//	GET  /api/v1/tasks/{id}
//	POST /api/v1/tasks/{id}/answers        {"worker": 2, "answer": "..."}
//	POST /api/v1/tasks/{id}/feedback       {"scores": {"2": 4}}
//	GET  /api/v1/workers/{id}
//	POST /api/v1/workers/{id}/presence     {"online": false}
//	GET  /api/v1/stats
//	POST /api/v1/query                     {"q": "SELECT ..."}
//	GET  /api/v1/metrics
//
// The unversioned /api/* paths of earlier releases are deprecated
// aliases: ServeHTTP rewrites them to /api/v1/* before dispatch, so
// both spellings share one handler and one metrics series (labeled
// under the v1 path). New clients should use /api/v1 exclusively.
//
// Every non-2xx response carries one JSON error envelope:
//
//	{"error": {"code": "bad_request", "message": "empty task text"}}
//
// where code is a stable machine-readable class (bad_request,
// not_found, method_not_allowed, over_capacity, client_closed_request,
// unavailable, not_implemented, internal) and message is
// human-readable detail.
//
// Handlers thread the request context into the manager, so a client
// that disconnects mid-request cancels the in-flight selection work;
// such aborts are reported as status 499 (client closed request).
//
// Every request passes through a recovery/metrics/logging middleware:
// handler panics become 500 responses instead of killing the
// connection, and per-endpoint counts, error counts and latency
// quantiles accumulate for GET /api/v1/metrics.
//
// Two probe endpoints sit outside /api for load balancers:
//
//	GET /healthz   always 200 while the process can serve at all
//	GET /readyz    200 once recovery finished and until shutdown
//	               drain begins, 503 otherwise
//
// Point LB liveness checks at /healthz and routing decisions at
// /readyz: the daemon flips /readyz to 503 during boot-time recovery
// and again when a graceful shutdown starts draining, so traffic moves
// away without dropping in-flight requests. Both probes bypass the
// load-shedding gate.
type Server struct {
	mgr        *Manager
	mux        *http.ServeMux
	query      QueryEngine // optional: POST /api/v1/query
	metrics    *Metrics
	logf       func(format string, args ...any) // nil: quiet
	ready      atomic.Bool
	inflight   chan struct{}             // nil: unlimited
	durability func() DurabilitySnapshot // nil: no durability section
}

// QueryEngine executes crowdql statements; crowdql.HTTPAdapter
// satisfies it. The indirection keeps crowddb free of a dependency on
// the query package. ctx is the request context: a disconnected client
// cancels query-driven selection work.
type QueryEngine interface {
	Execute(ctx context.Context, q string) (any, error)
}

// maxBatchTasks bounds one POST /api/v1/tasks:batch request. The cap
// keeps a single request from monopolizing the selection path; clients
// with more tasks split them across requests.
const maxBatchTasks = 1024

// statusClientClosedRequest reports a request aborted because the
// client went away (context cancelled or deadline exceeded) — the
// de facto 499 status popularized by nginx; net/http has no name
// for it.
const statusClientClosedRequest = 499

// NewServer wraps a manager. The server starts ready; daemons that
// recover state on boot call SetReady(false) before serving and flip
// it once recovery completes.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), metrics: NewMetrics()}
	s.ready.Store(true)
	s.mux.HandleFunc("/api/v1/tasks", s.handleTasks)
	s.mux.HandleFunc("/api/v1/tasks:batch", s.handleTasksBatch)
	s.mux.HandleFunc("/api/v1/tasks/", s.handleTaskSubtree)
	s.mux.HandleFunc("/api/v1/workers/", s.handleWorkerSubtree)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.HandleFunc("/api/v1/query", s.handleQuery)
	s.mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// SetQueryEngine enables POST /api/v1/query {"q": "SELECT ..."}.
func (s *Server) SetQueryEngine(e QueryEngine) { s.query = e }

// SetLogger installs a request/panic log sink (log.Printf shaped).
// The default is silent.
func (s *Server) SetLogger(logf func(format string, args ...any)) { s.logf = logf }

// SetReady flips the readiness gate: while false, /readyz reports 503
// and /api/* requests are refused with 503 + Retry-After so load
// balancers route elsewhere during recovery or shutdown drain.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetMaxInFlight caps concurrently served /api requests; excess
// requests are shed immediately with 429 + Retry-After instead of
// queueing until the client times out. n <= 0 removes the cap. Call
// before serving traffic.
func (s *Server) SetMaxInFlight(n int) {
	if n <= 0 {
		s.inflight = nil
		return
	}
	s.inflight = make(chan struct{}, n)
}

// SetDurabilityStats adds a durability section to GET /api/v1/metrics,
// fed by the given snapshot function (typically (*DB).Stats).
func (s *Server) SetDurabilityStats(f func() DurabilitySnapshot) { s.durability = f }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Metrics exposes the server's metrics registry, e.g. for logging a
// final snapshot at shutdown.
func (s *Server) Metrics() *Metrics { return s.metrics }

type queryRequest struct {
	Q string `json:"q"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if s.query == nil {
		httpError(w, http.StatusNotImplemented, errors.New("query engine not configured"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	res, err := s.query.Execute(r.Context(), req.Q)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// legacyRewrite maps a deprecated unversioned /api/* path to its
// /api/v1/* home, or returns "" when the path needs no rewrite.
func legacyRewrite(path string) string {
	if !strings.HasPrefix(path, "/api/") || strings.HasPrefix(path, "/api/v1/") || path == "/api/v1" {
		return ""
	}
	return "/api/v1/" + strings.TrimPrefix(path, "/api/")
}

// ServeHTTP implements http.Handler. It is the middleware shell:
// rewrite deprecated /api/* paths onto /api/v1/*, route, then record
// status/latency per endpoint (under the v1 label for both spellings)
// and turn handler panics into 500s.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	if v1 := legacyRewrite(r.URL.Path); v1 != "" {
		r = r.Clone(r.Context())
		r.URL.Path = v1
	}
	defer func() {
		if p := recover(); p != nil {
			if s.logf != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			}
			if !sw.wrote {
				httpError(sw, http.StatusInternalServerError, errors.New("internal server error"))
			}
		}
		status := sw.status()
		s.metrics.Observe(endpointLabel(r), status, time.Since(start))
		if s.logf != nil {
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond))
		}
	}()
	if probe := r.URL.Path == "/healthz" || r.URL.Path == "/readyz"; !probe {
		if !s.ready.Load() {
			sw.Header().Set("Retry-After", "1")
			httpError(sw, http.StatusServiceUnavailable, errors.New("service not ready"))
			return
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.ObserveShed()
				sw.Header().Set("Retry-After", "1")
				httpError(sw, http.StatusTooManyRequests, errors.New("server at capacity"))
				return
			}
		}
	}
	s.mux.ServeHTTP(sw, r)
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// endpointLabel normalizes a request to its route pattern — numeric
// path segments collapse to {id} so /api/v1/tasks/17/feedback and
// /api/v1/tasks/99/feedback share one metrics series. Legacy /api/*
// requests were rewritten before this runs, so both spellings land on
// the v1 series.
func endpointLabel(r *http.Request) string {
	segs := strings.Split(r.URL.Path, "/")
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		if _, err := strconv.Atoi(seg); err == nil {
			segs[i] = "{id}"
		}
	}
	return r.Method + " " + strings.Join(segs, "/")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	snap := s.metrics.Snapshot()
	if s.durability != nil {
		d := s.durability()
		snap.Durability = &d
	}
	writeJSON(w, http.StatusOK, snap)
}

// SubmitRequest is the body of POST /api/v1/tasks and one element of a
// batch submission. K ≤ 0 selects the manager's default crowd size.
type SubmitRequest struct {
	Text string `json:"text"`
	K    int    `json:"k"`
}

// SubmitResponse is the result of one task submission: the stored task
// id, its selected crowd (best first), and the selector that ranked
// it.
type SubmitResponse struct {
	TaskID  int    `json:"task_id"`
	Workers []int  `json:"workers"`
	Model   string `json:"model"`
}

// BatchSubmitRequest is the body of POST /api/v1/tasks:batch: up to
// maxBatchTasks submissions served in one round trip.
type BatchSubmitRequest struct {
	Tasks []SubmitRequest `json:"tasks"`
}

// BatchSubmitResponse carries one SubmitResponse per submitted task,
// in request order.
type BatchSubmitResponse struct {
	Results []SubmitResponse `json:"results"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty task text"))
		return
	}
	sub, err := s.mgr.SubmitTask(r.Context(), req.Text, req.K)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResponse{
		TaskID:  sub.Task.ID,
		Workers: sub.Workers,
		Model:   s.mgr.SelectorName(),
	})
}

func (s *Server) handleTasksBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req BatchSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Tasks) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Tasks) > maxBatchTasks {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d tasks exceeds the limit of %d", len(req.Tasks), maxBatchTasks))
		return
	}
	reqs := make([]TaskSubmission, len(req.Tasks))
	for i, t := range req.Tasks {
		if strings.TrimSpace(t.Text) == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty task text at index %d", i))
			return
		}
		reqs[i] = TaskSubmission{Text: t.Text, K: t.K}
	}
	subs, err := s.mgr.SubmitBatch(r.Context(), reqs)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	model := s.mgr.SelectorName()
	resp := BatchSubmitResponse{Results: make([]SubmitResponse, len(subs))}
	for i, sub := range subs {
		resp.Results[i] = SubmitResponse{TaskID: sub.Task.ID, Workers: sub.Workers, Model: model}
	}
	writeJSON(w, http.StatusCreated, resp)
}

type answerRequest struct {
	Worker int    `json:"worker"`
	Answer string `json:"answer"`
}

type feedbackRequest struct {
	Scores map[string]float64 `json:"scores"`
}

func (s *Server) handleTaskSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/tasks/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad task id %q", parts[0]))
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		task, err := s.mgr.Store().GetTask(id)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, task)
	case len(parts) == 2 && parts[1] == "answers" && r.Method == http.MethodPost:
		var req answerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mgr.CollectAnswer(id, req.Worker, req.Answer); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req feedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		scores := make(map[int]float64, len(req.Scores))
		for k, v := range req.Scores {
			wid, err := strconv.Atoi(k)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", k))
				return
			}
			scores[wid] = v
		}
		rec, err := s.mgr.ResolveTask(r.Context(), id, scores)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

type presenceRequest struct {
	Online bool `json:"online"`
}

func (s *Server) handleWorkerSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", parts[0]))
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		worker, err := s.mgr.Store().GetWorker(id)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, worker)
	case len(parts) == 2 && parts[1] == "presence" && r.Method == http.MethodPost:
		var req presenceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mgr.Store().SetOnline(id, req.Online); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// StatsResponse is the body of GET /api/v1/stats: crowd database
// counters and the active selector.
type StatsResponse struct {
	Workers  int    `json:"workers"`
	Online   int    `json:"online"`
	Tasks    int    `json:"tasks"`
	Open     int    `json:"open"`
	Assigned int    `json:"assigned"`
	Resolved int    `json:"resolved"`
	Model    string `json:"model"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	st := s.mgr.Store()
	writeJSON(w, http.StatusOK, StatsResponse{
		Workers:  st.NumWorkers(),
		Online:   len(st.OnlineWorkers()),
		Tasks:    st.NumTasks(),
		Open:     len(st.ListTasks(TaskOpen)),
		Assigned: len(st.ListTasks(TaskAssigned)),
		Resolved: len(st.ListTasks(TaskResolved)),
		Model:    s.mgr.SelectorName(),
	})
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadState), errors.Is(err, ErrNotAsked),
		errors.Is(err, ErrDuplicate), errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorBody is the payload of the error envelope every non-2xx
// response carries: a stable machine-readable code plus human-readable
// detail.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON shape of every non-2xx response:
// {"error": {"code": "...", "message": "..."}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// codeOf maps an HTTP status to the envelope's stable error code.
func codeOf(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusTooManyRequests:
		return "over_capacity"
	case statusClientClosedRequest:
		return "client_closed_request"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: codeOf(status), Message: err.Error()}})
}

package crowddb

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/rank"
)

// Server exposes the crowd manager over a versioned HTTP API:
//
//	POST /api/v1/tasks                     {"text": "...", "k": 3}
//	POST /api/v1/tasks:batch               {"tasks": [{"text": "...", "k": 3}, ...]}
//	POST /api/v1/selections                {"tasks": [{"text": "...", "k": 3}, ...]}  (pure read: rank, store nothing)
//	GET  /api/v1/tasks/{id}
//	POST /api/v1/tasks/{id}/answers        {"worker": 2, "answer": "..."}
//	POST /api/v1/tasks/{id}/feedback       {"scores": {"2": 4}}
//	GET  /api/v1/workers/{id}
//	POST /api/v1/workers/{id}/presence     {"online": false}
//	GET  /api/v1/stats
//	POST /api/v1/query                     {"q": "SELECT ..."}
//	GET  /api/v1/metrics
//	GET  /api/v1/replication/stream        long-lived journal stream for followers (primary only)
//	POST /api/v1/replication/promote       flip a replica to primary
//
// A node running as a read replica (SetRole) refuses mutations and
// /api/v1/query with 421 + the not_primary code and an
// X-Crowdd-Primary header pointing at its primary; selections and
// other reads keep serving from the replicated model. Replication
// paths bypass admission, deadline budgets and the body cap — the
// stream is long-lived by design.
//
// The unversioned /api/* paths of earlier releases are deprecated
// aliases: ServeHTTP rewrites them to /api/v1/* before dispatch, so
// both spellings share one handler and one metrics series (labeled
// under the v1 path). New clients should use /api/v1 exclusively.
//
// Tenant-scoped routes live under /api/v1/t/{tenant}/... (DESIGN §13):
// the same rewrite-pre-dispatch trick strips the tenant prefix and
// threads the tenant through the request context, so every data route
// serves every tenant from one mux. The un-prefixed /api/v1/* routes
// are exact aliases for the "default" tenant. Unknown tenants get 404
// with the unknown_tenant code; a tenant over its in-flight quota gets
// 429 with tenant_quota_exceeded. See AddTenant / SetTenantQuota.
//
// Every non-2xx response carries one JSON error envelope:
//
//	{"error": {"code": "bad_request", "message": "empty task text"}}
//
// where code is a stable machine-readable class (bad_request,
// not_found, method_not_allowed, request_too_large, over_capacity,
// client_closed_request, unavailable, degraded_read_only,
// deadline_exceeded, not_primary, replica_diverged, unknown_tenant,
// tenant_quota_exceeded, not_implemented, internal) and message is
// human-readable detail.
//
// Handlers thread the request context into the manager, so a client
// that disconnects mid-request cancels the in-flight selection work;
// such aborts are reported as status 499 (client closed request).
//
// Every request passes through a recovery/metrics/logging middleware:
// handler panics become 500 responses instead of killing the
// connection, and per-endpoint counts, error counts and latency
// quantiles accumulate for GET /api/v1/metrics.
//
// Two probe endpoints sit outside /api for load balancers:
//
//	GET /healthz   always 200 while the process can serve at all
//	GET /readyz    200 once recovery finished and until shutdown
//	               drain begins, 503 otherwise
//
// Point LB liveness checks at /healthz and routing decisions at
// /readyz: the daemon flips /readyz to 503 during boot-time recovery
// and again when a graceful shutdown starts draining, so traffic moves
// away without dropping in-flight requests. Both probes bypass the
// load-shedding gate.
type Server struct {
	mgr        *Manager
	mux        *http.ServeMux
	query      QueryEngine // optional: POST /api/v1/query
	metrics    *Metrics
	logf       func(format string, args ...any) // nil: quiet
	ready      atomic.Bool
	adm        *admission    // nil: unlimited
	readBudget time.Duration // server-side deadline for reads (0: none)

	writeBudget time.Duration             // server-side deadline for mutations (0: none)
	maxBody     int64                     // request-body cap for POSTs
	degraded    func() bool               // nil: never degraded
	durability  func() DurabilitySnapshot // nil: no durability section

	role       atomic.Value             // RolePrimary | RoleReplica
	replSource http.Handler             // GET /api/v1/replication/stream
	replStatus func() ReplicationStatus // nil: no replication section
	promoter   func(context.Context) error
	fence      *Fence // nil: no fencing (hand-operated fleets)
	fleetToken string // non-empty: bearer token gating /api/v1/replication/*

	cacheStats func() core.ProjectionCacheStats // nil: no cache section
	topo       topologyState                    // live topology document

	digest    DigestFunc               // nil: GET /api/v1/digest is 404 (default tenant)
	backup    http.Handler             // nil: GET /api/v1/backup is 501 (default tenant)
	integrity func() IntegritySnapshot // nil: no integrity section

	// tenants is the tenant registry (DESIGN §13). It always holds the
	// default entry; AddTenant registers more at boot time. The default
	// entry's manager/query/... fields stay nil — the Server's own
	// fields above are authoritative for the default tenant.
	tenants map[string]*tenantEntry
}

// QueryEngine executes crowdql statements; crowdql.HTTPAdapter
// satisfies it. The indirection keeps crowddb free of a dependency on
// the query package. ctx is the request context: a disconnected client
// cancels query-driven selection work.
type QueryEngine interface {
	Execute(ctx context.Context, q string) (any, error)
}

// maxBatchTasks bounds one POST /api/v1/tasks:batch request. The cap
// keeps a single request from monopolizing the selection path; clients
// with more tasks split them across requests.
const maxBatchTasks = 1024

// defaultMaxBody caps a POST request body unless SetMaxBodyBytes says
// otherwise; oversized bodies get 413 with the request_too_large code.
const defaultMaxBody = 1 << 20

// statusClientClosedRequest reports a request aborted because the
// client went away (context cancelled or deadline exceeded) — the
// de facto 499 status popularized by nginx; net/http has no name
// for it.
const statusClientClosedRequest = 499

// NewServer wraps a manager. The server starts ready; daemons that
// recover state on boot call SetReady(false) before serving and flip
// it once recovery completes.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), metrics: NewMetrics(), maxBody: defaultMaxBody}
	s.ready.Store(true)
	s.tenants = map[string]*tenantEntry{DefaultTenant: {name: DefaultTenant}}
	s.registerRoutes()
	s.role.Store(RolePrimary)
	return s
}

// SetQueryEngine enables POST /api/v1/query {"q": "SELECT ..."}.
func (s *Server) SetQueryEngine(e QueryEngine) { s.query = e }

// SetLogger installs a request/panic log sink (log.Printf shaped).
// The default is silent.
func (s *Server) SetLogger(logf func(format string, args ...any)) { s.logf = logf }

// SetReady flips the readiness gate: while false, /readyz reports 503
// and /api/* requests are refused with 503 + Retry-After so load
// balancers route elsewhere during recovery or shutdown drain.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetMaxInFlight pins a fixed concurrency cap on /api requests (no
// AIMD adaptation): excess reads are shed immediately with 429 +
// Retry-After; mutations keep a small reserve above the cap so they
// are never shed before reads. n <= 0 removes the cap. Call before
// serving traffic. For an adaptive limit use SetAdmission.
func (s *Server) SetMaxInFlight(n int) {
	if n <= 0 {
		s.adm = nil
		return
	}
	s.adm = newAdmission(AdmissionConfig{Initial: n, Min: n, Max: n})
}

// SetAdmission installs the adaptive AIMD admission controller: the
// concurrency limit grows additively while requests finish inside
// their deadline budget and shrinks multiplicatively on deadline
// overruns, within [cfg.Min, cfg.Max]. Call before serving traffic.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	s.adm = newAdmission(cfg)
}

// SetDeadlineBudgets installs per-request server-side deadlines: read
// requests (GETs, selections, query) get read, mutations get write.
// Zero disables that class's budget. The budget is threaded through
// the request context, so handler work is actually abandoned at the
// deadline; the response is 503 with the deadline_exceeded code, and
// each overrun is an overload signal to the admission controller.
func (s *Server) SetDeadlineBudgets(read, write time.Duration) {
	s.readBudget, s.writeBudget = read, write
}

// SetMaxBodyBytes caps POST request bodies (default 1 MiB); oversized
// requests get 413 with the request_too_large code. n <= 0 restores
// the default.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = defaultMaxBody
	}
	s.maxBody = n
}

// SetDegradedCheck wires the durability layer's degraded-mode flag
// (typically (*DB).Degraded): while it reports true, mutations are
// refused up front with 503 + degraded_read_only and /readyz carries a
// mode detail, while selections and other reads keep serving from the
// last committed model.
func (s *Server) SetDegradedCheck(f func() bool) { s.degraded = f }

// SetDurabilityStats adds a durability section to GET /api/v1/metrics,
// fed by the given snapshot function (typically (*DB).Stats).
func (s *Server) SetDurabilityStats(f func() DurabilitySnapshot) { s.durability = f }

// SetCacheStats adds a projection-cache section to GET /api/v1/metrics,
// fed by the given snapshot function (typically
// (*core.ConcurrentModel).CacheStats). A disabled cache reports
// disabled: true rather than an ever-growing miss count.
func (s *Server) SetCacheStats(f func() core.ProjectionCacheStats) { s.cacheStats = f }

// SetTopology installs (or updates) the fleet topology document served
// at GET /api/v1/topology. The first call at boot seeds the epoch;
// later calls follow the same stale-epoch rule as the admin endpoint.
func (s *Server) SetTopology(doc Topology) error { return s.topo.set(doc) }

// Topology returns the current topology document with Self stamped to
// this node's shard index.
func (s *Server) Topology() Topology {
	doc := s.topo.get()
	doc.Self = s.shard().Index
	return doc
}

// shard is this node's shard identity, read from the manager.
func (s *Server) shard() ShardSpec { return s.mgr.Shard() }

// handleTopology serves the live topology document and accepts admin
// updates. GET is served by every node (replicas included) so a router
// can refresh from whatever it can still reach; POST installs a new
// layout if its epoch is not stale.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Topology())
	case http.MethodPost:
		var doc Topology
		if !s.decodeJSON(w, r, &doc) {
			return
		}
		if err := s.topo.set(doc); err != nil {
			writeErr(w, r, err)
			return
		}
		if s.logf != nil {
			s.logf("topology updated to epoch %d (%d shards)", doc.Epoch, doc.Count)
		}
		writeJSON(w, http.StatusOK, s.Topology())
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

// skillFeedbackRequest is the body of POST /api/v1/skills:feedback:
// the task text (for projection) and scores for workers this shard
// owns. This is the cross-shard red path: the task's home shard keeps
// the resolved row, each owner shard folds its workers' posteriors.
// Task, when present, is the home-shard task id the forward belongs
// to; it keys server-side deduplication so a coordinator can retry a
// failed forward leg without double-applying (task ids start at 0,
// hence the pointer).
type skillFeedbackRequest struct {
	Text   string             `json:"text"`
	Scores map[string]float64 `json:"scores"`
	Task   *int               `json:"task,omitempty"`
}

func (s *Server) handleSkillFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req skillFeedbackRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty task text"))
		return
	}
	scores := make(map[int]float64, len(req.Scores))
	for k, v := range req.Scores {
		wid, err := strconv.Atoi(k)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", k))
			return
		}
		scores[wid] = v
	}
	forwardOf := -1
	if req.Task != nil {
		if *req.Task < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad task id %d", *req.Task))
			return
		}
		forwardOf = *req.Task
	}
	if err := s.mgrFor(r).ApplyModelFeedback(r.Context(), forwardOf, req.Text, scores); err != nil {
		s.writeShardErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeShardErr is writeErr plus the wrong-shard mapping: a typed 421
// with the stable wrong_shard code and owner-hint headers
// (X-Crowdd-Shard-Owner, and X-Crowdd-Shard-Owner-URL when the
// topology knows the owner's address), so a router with a stale view
// can re-aim without a directory service.
func (s *Server) writeShardErr(w http.ResponseWriter, r *http.Request, err error) {
	var wse *WrongShardError
	if !errors.As(err, &wse) {
		writeErr(w, r, err)
		return
	}
	w.Header().Set("X-Crowdd-Shard-Owner", strconv.Itoa(wse.Owner))
	if url := s.topo.get().URLOf(wse.Owner); url != "" {
		wse.OwnerURL = url
		w.Header().Set("X-Crowdd-Shard-Owner-URL", url)
	}
	httpErrorCode(w, http.StatusMisdirectedRequest, codeWrongShard, wse)
}

// refuseUnownedTask gates the /tasks/{id} subtree on a sharded node:
// a task homed elsewhere gets the typed 421 so the caller re-routes.
// Reports true when the request was refused.
func (s *Server) refuseUnownedTask(w http.ResponseWriter, r *http.Request, id int) bool {
	sp := s.shard()
	if sp.OwnsTask(id) {
		return false
	}
	s.writeShardErr(w, r, &WrongShardError{Resource: "task", ID: id, Owner: ShardOfTask(id, sp.Count)})
	return true
}

// refuseUnownedWorker gates worker mutations (presence) the same way.
func (s *Server) refuseUnownedWorker(w http.ResponseWriter, r *http.Request, id int) bool {
	sp := s.shard()
	if sp.OwnsWorker(id) {
		return false
	}
	s.writeShardErr(w, r, &WrongShardError{Resource: "worker", ID: id, Owner: ShardOfWorker(id, sp.Count)})
	return true
}

// SetRole declares this node's replication role. A replica refuses
// mutations (and /api/v1/query, which may mutate) with 421 +
// not_primary and an X-Crowdd-Primary redirect header; promotion
// flips the role back to primary. The default is RolePrimary.
func (s *Server) SetRole(role string) { s.role.Store(role) }

// Role reports the node's current replication role.
func (s *Server) Role() string {
	if v, ok := s.role.Load().(string); ok {
		return v
	}
	return RolePrimary
}

// SetReplicationSource enables GET /api/v1/replication/stream
// (typically a *ReplicationSource). Only a primary serves it.
func (s *Server) SetReplicationSource(h http.Handler) { s.replSource = h }

// SetReplicationStatus adds a replication section to /readyz and
// GET /api/v1/metrics (typically (*ReplicationSource).Status on a
// primary, or a composite over (*Replica).Status on a follower).
func (s *Server) SetReplicationStatus(f func() ReplicationStatus) { s.replStatus = f }

// SetPromoter enables POST /api/v1/replication/promote on a replica
// (typically (*Replica).Promote). On success the server's role flips
// to primary.
func (s *Server) SetPromoter(f func(context.Context) error) { s.promoter = f }

// SetDigestProvider enables GET /api/v1/digest for the default tenant
// (DESIGN §14): fn is typically a DigestCutter's Cut on a primary, or
// (*Replica).Digest on a follower. Tenant-scoped digests install via
// TenantConfig.Digest.
func (s *Server) SetDigestProvider(fn DigestFunc) { s.digest = fn }

// SetBackupSource enables GET /api/v1/backup for the default tenant
// (see BackupSource); nil (the default) answers 501.
func (s *Server) SetBackupSource(h http.Handler) { s.backup = h }

// SetIntegrityStats adds the integrity section (scrub progress,
// divergence state) to GET /api/v1/metrics and /readyz, fed by the
// given snapshot function (typically (*DB).ScrubStats, merged with the
// replica's divergence counters on a follower).
func (s *Server) SetIntegrityStats(f func() IntegritySnapshot) { s.integrity = f }

// SetFence installs the node's fencing state (DESIGN §12): every
// response then advertises the highest fencing epoch this node has
// seen via X-Crowdd-Fencing-Epoch, sealed nodes refuse mutations with
// 409 fenced, and POST /api/v1/replication/{fence,lease} come alive.
// Epoch observations arrive only through those endpoints and the
// replication stream — never from request headers, which any client
// can forge.
func (s *Server) SetFence(f *Fence) { s.fence = f }

// SetFleetToken arms the fleet-control gate: with a non-empty token,
// every /api/v1/replication/* request (stream, promote, fence, lease)
// must carry "Authorization: Bearer <token>" or is refused 403
// forbidden. Those endpoints move a fleet's write availability — a
// fence order seals a primary until it is re-pointed — so they must
// come from the supervisor, an operator, or a follower, not from any
// client that can reach the port. Empty (the default) leaves the
// surface open for hand-operated fleets on trusted networks.
func (s *Server) SetFleetToken(token string) { s.fleetToken = token }

// fleetAuthorized checks the fleet-control gate for one request.
func (s *Server) fleetAuthorized(r *http.Request) bool {
	if s.fleetToken == "" {
		return true
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(tok), []byte(s.fleetToken)) == 1
}

// Fence returns the installed fencing state, or nil.
func (s *Server) Fence() *Fence { return s.fence }

// roleNow is the effective role: the stored role, overridden by
// "fenced" while the node is sealed.
func (s *Server) roleNow() string {
	if s.fence != nil && s.fence.Sealed() {
		return RoleFenced
	}
	return s.Role()
}

// replicationStatusNow snapshots the replication section, with the
// server's own role as the authority.
func (s *Server) replicationStatusNow() ReplicationStatus {
	st := ReplicationStatus{Role: s.roleNow(), Connected: s.Role() == RolePrimary}
	if s.replStatus != nil {
		st = s.replStatus()
		st.Role = s.roleNow()
	}
	if s.fence != nil && st.FencingEpoch == 0 {
		st.FencingEpoch = s.fence.Epoch()
	}
	return st
}

// handleReplStream serves the journal stream to followers; the
// long-lived response is produced by the tenant's installed
// ReplicationSource — /api/v1/t/{name}/replication/stream streams that
// tenant's journal, the un-prefixed path the default tenant's.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	src := s.replSourceFor(r)
	if src == nil {
		httpError(w, http.StatusNotImplemented, errors.New("replication source not configured"))
		return
	}
	if s.Role() != RolePrimary {
		httpErrorCode(w, http.StatusServiceUnavailable, codeNotPrimary,
			errors.New("a replica does not serve the replication stream; connect to the primary"))
		return
	}
	src.ServeHTTP(w, r)
}

// handlePromote flips a replica to primary: the promoter seals the
// stream, replays to tail and checkpoints; then the role flips and
// mutations are accepted. Idempotent — promoting a primary reports
// its status with 200.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if s.fence != nil {
		if st := s.fence.Status(); st.Sealed && st.SealedBy == "epoch" {
			// A node deposed by epoch cannot be promoted in place — a
			// newer primary exists; re-point this node as its follower.
			s.fence.Refuse(w, errors.New("cannot promote a fenced node"))
			return
		}
	}
	if s.Role() == RolePrimary {
		writeJSON(w, http.StatusOK, s.replicationStatusNow())
		return
	}
	if s.promoter == nil {
		httpError(w, http.StatusNotImplemented, errors.New("no promoter configured"))
		return
	}
	if err := s.promoter(r.Context()); err != nil {
		writeErr(w, r, err)
		return
	}
	s.SetRole(RolePrimary)
	if s.logf != nil {
		s.logf("promoted to primary")
	}
	writeJSON(w, http.StatusOK, s.replicationStatusNow())
}

// FenceRequest is the body of POST /api/v1/replication/fence: an
// order that epoch Epoch exists for history History, optionally with
// the new primary's base URL for the redirect hint. A node whose own
// epoch is lower seals itself. Idempotent; the response is the
// resulting FenceStatus, so the caller verifies Sealed/Observed
// rather than inferring from the status code.
type FenceRequest struct {
	History    string `json:"history"`
	Epoch      uint64 `json:"epoch"`
	NewPrimary string `json:"new_primary,omitempty"`
}

// FenceResponse answers the fence and lease endpoints.
type FenceResponse struct {
	Role    string      `json:"role"`
	Fencing FenceStatus `json:"fencing"`
}

func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if s.fence == nil {
		httpError(w, http.StatusNotImplemented, errors.New("fencing not configured"))
		return
	}
	var req FenceRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.History == "" || req.Epoch == 0 {
		httpError(w, http.StatusBadRequest, errors.New("fence needs history and epoch"))
		return
	}
	s.fence.Observe(req.History, req.Epoch, req.NewPrimary)
	writeJSON(w, http.StatusOK, FenceResponse{Role: s.roleNow(), Fencing: s.fence.Status()})
}

// LeaseRequest is the body of POST /api/v1/replication/lease: the
// supervisor's mutation-lease renewal. Once the first renewal arms
// the lease, the node seals itself (provisionally) whenever the lease
// lapses — the self-fencing half of the split-brain contract, for
// primaries partitioned away from the supervisor but still reachable
// by clients. Seal inverts the request: instead of renewing, the node
// steps down immediately (its lease set already-lapsed), refusing
// mutations until a plain renewal un-seals it — the reversible first
// step of a drain handoff.
type LeaseRequest struct {
	Holder string `json:"holder"`
	TTLMs  int64  `json:"ttl_ms,omitempty"`
	Seal   bool   `json:"seal,omitempty"`
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if s.fence == nil {
		httpError(w, http.StatusNotImplemented, errors.New("fencing not configured"))
		return
	}
	var req LeaseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Seal {
		if err := s.fence.StepDown(req.Holder); err != nil {
			s.fence.Refuse(w, errors.New("step-down refused: node already deposed"))
			return
		}
		writeJSON(w, http.StatusOK, ReadyzResponse{
			Status:       "ready",
			Role:         s.roleNow(),
			FencingEpoch: s.fence.Epoch(),
			Replication:  s.replicationSection(),
		})
		return
	}
	if err := s.fence.Renew(req.Holder, time.Duration(req.TTLMs)*time.Millisecond); err != nil {
		if errors.Is(err, ErrFenced) {
			s.fence.Refuse(w, errors.New("lease refused: node already deposed"))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ReadyzResponse{
		Status:       "ready",
		Role:         s.roleNow(),
		FencingEpoch: s.fence.Epoch(),
		Replication:  s.replicationSection(),
	})
}

// replicationSection returns the replication status pointer for
// payloads that carry it optionally.
func (s *Server) replicationSection() *ReplicationStatus {
	if s.replStatus == nil {
		return nil
	}
	st := s.replicationStatusNow()
	return &st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyzResponse is the body of GET /readyz: readiness, the degraded
// detail when the journal is unavailable, the node's replication role,
// and (when replication is wired) position and lag.
type ReadyzResponse struct {
	Status string `json:"status"`
	Mode   string `json:"mode,omitempty"`
	// Role is primary, replica or fenced — load balancers and the
	// fleet supervisor route on it without parsing replication status.
	Role         string             `json:"role"`
	FencingEpoch uint64             `json:"fencing_epoch,omitempty"`
	Fencing      *FenceStatus       `json:"fencing,omitempty"`
	Replication  *ReplicationStatus `json:"replication,omitempty"`
	Integrity    *IntegritySnapshot `json:"integrity,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyzResponse{Status: "ready", Role: s.roleNow()}
	if s.fence != nil {
		fs := s.fence.Status()
		resp.FencingEpoch = fs.Epoch
		resp.Fencing = &fs
	}
	if s.replStatus != nil {
		st := s.replicationStatusNow()
		resp.Replication = &st
	}
	if s.integrity != nil {
		is := s.integrity()
		resp.Integrity = &is
	}
	if !s.ready.Load() {
		resp.Status = "not ready"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	// Degraded read-only is still ready — selections keep serving — but
	// the detail lets operators and dashboards see the state.
	if s.degraded != nil && s.degraded() {
		resp.Mode = "degraded_read_only"
	}
	writeJSON(w, http.StatusOK, resp)
}

// Metrics exposes the server's metrics registry, e.g. for logging a
// final snapshot at shutdown.
func (s *Server) Metrics() *Metrics { return s.metrics }

type queryRequest struct {
	Q string `json:"q"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	query := s.queryFor(r)
	if query == nil {
		httpError(w, http.StatusNotImplemented, errors.New("query engine not configured"))
		return
	}
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Q) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	res, err := query.Execute(r.Context(), req.Q)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// legacyRewrite maps a deprecated unversioned /api/* path to its
// /api/v1/* home, or returns "" when the path needs no rewrite.
func legacyRewrite(path string) string {
	if !strings.HasPrefix(path, "/api/") || strings.HasPrefix(path, "/api/v1/") || path == "/api/v1" {
		return ""
	}
	return "/api/v1/" + strings.TrimPrefix(path, "/api/")
}

// isMutation classifies a request for shedding priority, deadline
// budgets and the degraded-mode gate. POSTs mutate the crowd database
// — except /api/v1/selections (a pure model read) and /api/v1/query
// (may be a pure SELECT; its mutating statements are sealed by the
// store's own gate in degraded mode).
func isMutation(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	switch r.URL.Path {
	case "/api/v1/selections", "/api/v1/query":
		return false
	}
	return true
}

// parentCtxKey carries the pre-budget request context so the error
// mapper can tell a server-imposed deadline (503 deadline_exceeded,
// overload signal) from a client disconnect (499).
type parentCtxKey struct{}

// serverDeadlineFired reports whether the server's own deadline budget
// expired while the client was still there.
func serverDeadlineFired(ctx context.Context) bool {
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return false
	}
	parent, ok := ctx.Value(parentCtxKey{}).(context.Context)
	return ok && parent.Err() == nil
}

// ServeHTTP implements http.Handler. It is the middleware shell:
// rewrite deprecated /api/* paths onto /api/v1/*, strip the
// /api/v1/t/{tenant} prefix into the request context, run the
// readiness, degraded-mode, admission and tenant-quota gates, arm the
// deadline budget, cap the request body, route, then record
// status/latency per endpoint (under the v1 label for every spelling)
// and turn handler panics into 500s.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	if v1 := legacyRewrite(r.URL.Path); v1 != "" {
		r = r.Clone(r.Context())
		r.URL.Path = v1
	}
	defer func() {
		if p := recover(); p != nil {
			if s.logf != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			}
			if !sw.wrote {
				httpError(sw, http.StatusInternalServerError, errors.New("internal server error"))
			}
		}
		status := sw.status()
		s.metrics.Observe(endpointLabel(r), status, time.Since(start))
		if s.logf != nil {
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond))
		}
	}()
	if s.fence != nil {
		// Epoch gossip, outbound only: every response advertises the
		// highest fencing epoch this node has seen, so clients learn of
		// a deposition from the first node that heard of the new epoch
		// and re-resolve. Inbound request headers are never trusted —
		// the history string rides every response, so a request echoing
		// it with a huge epoch would let any unauthenticated client
		// permanently brick a primary. Epoch observations enter only
		// through the fence endpoint and the replication stream, both
		// behind the fleet token when one is configured.
		sw.Header().Set("X-Crowdd-Fencing-Epoch", strconv.FormatUint(s.fence.ObservedEpoch(), 10))
		sw.Header().Set("X-Crowdd-History", s.fence.History())
	}
	if probe := r.URL.Path == "/healthz" || r.URL.Path == "/readyz"; !probe {
		// Tenant rewrite, before every gate: /api/v1/t/{name}/rest
		// becomes /api/v1/rest with the tenant in the request context,
		// so tenant-scoped and default spellings share one mux, one
		// handler and one metrics series — exactly the legacy-alias
		// contract, extended to namespaces.
		ten := s.tenants[DefaultTenant]
		if name, v1, scoped := splitTenantPath(r.URL.Path); scoped {
			e := s.tenants[name]
			if e == nil {
				// Collapse the unknown name before the deferred metrics
				// observation — arbitrary request paths must not mint
				// unbounded label cardinality.
				r = r.Clone(r.Context())
				r.URL.Path = "/api/v1/t/{tenant}"
				httpErrorCode(sw, http.StatusNotFound, codeUnknownTenant,
					fmt.Errorf("unknown tenant %q", name))
				return
			}
			ten = e
			r = r.Clone(context.WithValue(r.Context(), tenantCtxKey{}, name))
			r.URL.Path = v1
		}
		ten.requests.Add(1)
		if !s.ready.Load() {
			sw.Header().Set("Retry-After", "1")
			httpError(sw, http.StatusServiceUnavailable, errors.New("service not ready"))
			return
		}
		if strings.HasPrefix(r.URL.Path, "/api/v1/replication/") || r.URL.Path == "/api/v1/backup" {
			// Replication traffic manages its own lifetime: the stream
			// is long-lived by design (no admission slot, no deadline
			// budget, no body cap) and promote must reach a replica that
			// refuses ordinary mutations. It is also the fleet-control
			// surface — fence, lease, promote move a fleet's write
			// availability — so it sits behind the fleet token. Backup
			// streams are the same kind of bulk fleet-plane transfer and
			// get the same treatment.
			if !s.fleetAuthorized(r) {
				httpErrorCode(sw, http.StatusForbidden, codeForbidden,
					errors.New("fleet control requires the fleet token (Authorization: Bearer ...)"))
				return
			}
			s.mux.ServeHTTP(sw, r)
			return
		}
		mutation := isMutation(r)
		// Topology updates are fleet admin, not data: they must reach
		// replicas (so a promoted standby already knows the layout) and
		// degraded nodes (so a router can steer around them), like
		// promote does.
		topoAdmin := r.URL.Path == "/api/v1/topology"
		if s.fence != nil && (mutation || r.URL.Path == "/api/v1/query") && !topoAdmin && s.fence.Sealed() {
			// Sealed node: refuse every mutation with the typed 409 and
			// the new-primary hint. Checked before the replica gate — a
			// fenced node's 421 would point at a deposed primary.
			s.fence.Refuse(sw, errors.New("mutations are sealed on a fenced node"))
			return
		}
		if s.Role() == RoleReplica && (mutation || r.URL.Path == "/api/v1/query") && !topoAdmin {
			if s.replStatus != nil {
				if p := s.replStatus().Primary; p != "" {
					sw.Header().Set("X-Crowdd-Primary", p)
				}
			}
			httpErrorCode(sw, http.StatusMisdirectedRequest, codeNotPrimary,
				errors.New("this node is a read replica; send writes to the primary"))
			return
		}
		if mutation && !topoAdmin && s.tenantDegraded(ten) {
			httpErrorCode(sw, http.StatusServiceUnavailable, codeDegradedReadOnly,
				errors.New("journal unavailable: mutations sealed, reads still served"))
			return
		}
		if s.adm != nil {
			ok, retryAfter := s.adm.acquire(mutation)
			if !ok {
				s.metrics.ObserveShed(mutation)
				sw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				httpError(sw, http.StatusTooManyRequests, errors.New("server at capacity"))
				return
			}
			defer func() {
				overloaded := serverDeadlineFired(r.Context())
				if overloaded {
					s.metrics.ObserveDeadlineOverrun()
				}
				s.adm.release(time.Since(start), overloaded)
			}()
		}
		// Per-tenant quota, after the node-wide admission gate: a noisy
		// tenant sheds on its own budget before it can crowd out the
		// others' share of the node's capacity.
		if !ten.admit() {
			sw.Header().Set("Retry-After", "1")
			httpErrorCode(sw, http.StatusTooManyRequests, codeTenantQuotaExceeded,
				fmt.Errorf("tenant %q is over its in-flight quota", ten.name))
			return
		}
		defer ten.release()
		if budget := s.budgetFor(mutation); budget > 0 {
			parent := r.Context()
			ctx, cancel := context.WithTimeout(context.WithValue(parent, parentCtxKey{}, parent), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if r.Method == http.MethodPost {
			r.Body = http.MaxBytesReader(sw, r.Body, s.maxBody)
		}
	}
	s.mux.ServeHTTP(sw, r)
}

// budgetFor picks the deadline budget for a request class.
func (s *Server) budgetFor(mutation bool) time.Duration {
	if mutation {
		return s.writeBudget
	}
	return s.readBudget
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer, so
// the replication stream can flush frames and clear the server's
// read/write deadlines through the middleware shell.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// endpointLabel normalizes a request to its route pattern — numeric
// path segments collapse to {id} so /api/v1/tasks/17/feedback and
// /api/v1/tasks/99/feedback share one metrics series. Legacy /api/*
// requests were rewritten before this runs, so both spellings land on
// the v1 series.
func endpointLabel(r *http.Request) string {
	segs := strings.Split(r.URL.Path, "/")
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		if _, err := strconv.Atoi(seg); err == nil {
			segs[i] = "{id}"
		}
	}
	return r.Method + " " + strings.Join(segs, "/")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	snap := s.metrics.Snapshot()
	if s.durability != nil {
		d := s.durability()
		snap.Durability = &d
	}
	if s.adm != nil {
		a := s.adm.snapshot()
		snap.Admission = &a
	}
	if s.replStatus != nil {
		rs := s.replicationStatusNow()
		snap.Replication = &rs
	}
	if s.cacheStats != nil {
		cs := s.cacheStats()
		snap.Cache = &cs
	}
	if sp := s.shard(); sp.Enabled() {
		snap.Shard = &ShardInfoSnapshot{Index: sp.Index, Count: sp.Count, Epoch: s.topo.get().Epoch}
	}
	if s.fence != nil {
		fs := s.fence.Status()
		snap.Fencing = &fs
	}
	if s.integrity != nil {
		is := s.integrity()
		snap.Integrity = &is
	}
	snap.Tenants = s.tenantSnapshots()
	writeJSON(w, http.StatusOK, snap)
}

// SubmitRequest is the body of POST /api/v1/tasks and one element of a
// batch submission. K ≤ 0 selects the manager's default crowd size. A
// non-empty Workers list bypasses ranking and assigns exactly those
// workers — the scatter-gather coordinator's submit path, after it has
// merged the global top-k itself.
type SubmitRequest struct {
	Text    string `json:"text"`
	K       int    `json:"k"`
	Workers []int  `json:"workers,omitempty"`
}

// SubmitResponse is the result of one task submission: the stored task
// id, its selected crowd (best first), and the selector that ranked
// it.
type SubmitResponse struct {
	TaskID  int    `json:"task_id"`
	Workers []int  `json:"workers"`
	Model   string `json:"model"`
}

// BatchSubmitRequest is the body of POST /api/v1/tasks:batch and
// POST /api/v1/selections: up to maxBatchTasks submissions served in
// one round trip. IncludeScores (selections only) returns each
// worker's Eq. 1 score alongside the ranking — required by
// scatter-gather coordinators, which merge per-shard lists by score.
type BatchSubmitRequest struct {
	Tasks         []SubmitRequest `json:"tasks"`
	IncludeScores bool            `json:"include_scores,omitempty"`
}

// BatchSubmitResponse carries one SubmitResponse per submitted task,
// in request order.
type BatchSubmitResponse struct {
	Results []SubmitResponse `json:"results"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req SubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty task text"))
		return
	}
	// A single submit is a batch of one, so the Workers preassignment
	// field behaves (and validates) identically on both endpoints.
	mgr := s.mgrFor(r)
	subs, err := mgr.SubmitBatch(r.Context(), []TaskSubmission{{Text: req.Text, K: req.K, Workers: req.Workers}})
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResponse{
		TaskID:  subs[0].Task.ID,
		Workers: subs[0].Workers,
		Model:   mgr.SelectorName(),
	})
}

func (s *Server) handleTasksBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req BatchSubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	reqs, ok := s.batchSubmissions(w, req)
	if !ok {
		return
	}
	mgr := s.mgrFor(r)
	subs, err := mgr.SubmitBatch(r.Context(), reqs)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	model := mgr.SelectorName()
	resp := BatchSubmitResponse{Results: make([]SubmitResponse, len(subs))}
	for i, sub := range subs {
		resp.Results[i] = SubmitResponse{TaskID: sub.Task.ID, Workers: sub.Workers, Model: model}
	}
	writeJSON(w, http.StatusCreated, resp)
}

// batchSubmissions validates a batch body shared by tasks:batch and
// selections; on failure it writes the error and reports !ok.
func (s *Server) batchSubmissions(w http.ResponseWriter, req BatchSubmitRequest) ([]TaskSubmission, bool) {
	if len(req.Tasks) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return nil, false
	}
	if len(req.Tasks) > maxBatchTasks {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d tasks exceeds the limit of %d", len(req.Tasks), maxBatchTasks))
		return nil, false
	}
	reqs := make([]TaskSubmission, len(req.Tasks))
	for i, t := range req.Tasks {
		if strings.TrimSpace(t.Text) == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty task text at index %d", i))
			return nil, false
		}
		reqs[i] = TaskSubmission{Text: t.Text, K: t.K, Workers: t.Workers}
	}
	return reqs, true
}

// SelectionResult is one element of a selections response: the crowd
// for one task text, best worker first. Scores is filled (parallel to
// Workers) when the request set include_scores.
type SelectionResult struct {
	Workers []int     `json:"workers"`
	Scores  []float64 `json:"scores,omitempty"`
}

// SelectionsResponse is the body of POST /api/v1/selections: one
// result per requested task, in request order, plus the selector that
// ranked them.
type SelectionsResponse struct {
	Results []SelectionResult `json:"results"`
	Model   string            `json:"model"`
}

// handleSelections is the pure selection path: rank crowds for up to
// maxBatchTasks task texts without storing anything. It reads only the
// committed model and the online-worker set, so it keeps answering in
// degraded read-only mode — the property the paper's selection queries
// need (§5.3: a selection needs only the last committed projection).
func (s *Server) handleSelections(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req BatchSubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	reqs, ok := s.batchSubmissions(w, req)
	if !ok {
		return
	}
	mgr := s.mgrFor(r)
	if req.IncludeScores {
		scored, err := mgr.RankOnlyScored(r.Context(), reqs)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		resp := SelectionsResponse{Results: make([]SelectionResult, len(scored)), Model: mgr.SelectorName()}
		for i, items := range scored {
			res := SelectionResult{Workers: rank.IDs(items), Scores: make([]float64, len(items))}
			for j, it := range items {
				res.Scores[j] = it.Score
			}
			resp.Results[i] = res
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	crowds, err := mgr.RankOnly(r.Context(), reqs)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp := SelectionsResponse{Results: make([]SelectionResult, len(crowds)), Model: mgr.SelectorName()}
	for i, c := range crowds {
		resp.Results[i] = SelectionResult{Workers: c}
	}
	writeJSON(w, http.StatusOK, resp)
}

type answerRequest struct {
	Worker int    `json:"worker"`
	Answer string `json:"answer"`
}

type feedbackRequest struct {
	Scores map[string]float64 `json:"scores"`
}

func (s *Server) handleTaskSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/tasks/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad task id %q", parts[0]))
		return
	}
	if s.refuseUnownedTask(w, r, id) {
		return
	}
	mgr := s.mgrFor(r)
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		task, err := mgr.Store().GetTask(id)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, task)
	case len(parts) == 2 && parts[1] == "answers" && r.Method == http.MethodPost:
		var req answerRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		if err := mgr.CollectAnswer(id, req.Worker, req.Answer); err != nil {
			writeErr(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && parts[1] == "feedback" && r.Method == http.MethodPost:
		var req feedbackRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		scores := make(map[int]float64, len(req.Scores))
		for k, v := range req.Scores {
			wid, err := strconv.Atoi(k)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", k))
				return
			}
			scores[wid] = v
		}
		rec, err := mgr.ResolveTask(r.Context(), id, scores)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

type presenceRequest struct {
	Online bool `json:"online"`
}

func (s *Server) handleWorkerSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad worker id %q", parts[0]))
		return
	}
	mgr := s.mgrFor(r)
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		worker, err := mgr.Store().GetWorker(id)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, worker)
	case len(parts) == 2 && parts[1] == "presence" && r.Method == http.MethodPost:
		if s.refuseUnownedWorker(w, r, id) {
			return
		}
		var req presenceRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		if err := mgr.Store().SetOnline(id, req.Online); err != nil {
			writeErr(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// StatsResponse is the body of GET /api/v1/stats: crowd database
// counters and the active selector.
type StatsResponse struct {
	Workers  int    `json:"workers"`
	Online   int    `json:"online"`
	Tasks    int    `json:"tasks"`
	Open     int    `json:"open"`
	Assigned int    `json:"assigned"`
	Resolved int    `json:"resolved"`
	Model    string `json:"model"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	mgr := s.mgrFor(r)
	st := mgr.Store()
	writeJSON(w, http.StatusOK, StatsResponse{
		Workers:  st.NumWorkers(),
		Online:   len(st.OnlineWorkers()),
		Tasks:    st.NumTasks(),
		Open:     len(st.ListTasks(TaskOpen)),
		Assigned: len(st.ListTasks(TaskAssigned)),
		Resolved: len(st.ListTasks(TaskResolved)),
		Model:    mgr.SelectorName(),
	})
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrJournal):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadState), errors.Is(err, ErrNotAsked),
		errors.Is(err, ErrDuplicate), errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeErr maps a handler error onto the envelope, aware of the
// request context: a server-imposed deadline overrun becomes 503
// deadline_exceeded (the client is still there; retrying is correct),
// a client disconnect stays 499, and sealed mutations in degraded
// read-only mode carry the stable degraded_read_only code.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrJournal):
		httpErrorCode(w, http.StatusServiceUnavailable, codeDegradedReadOnly, err)
	case errors.Is(err, ErrStaleEpoch):
		httpErrorCode(w, http.StatusConflict, codeStaleEpoch, err)
	case errors.Is(err, ErrFenced):
		httpErrorCode(w, http.StatusConflict, codeFenced, err)
	case errors.Is(err, ErrPromotionInProgress):
		httpErrorCode(w, http.StatusConflict, codePromotionInProgress, err)
	case errors.Is(err, ErrReplicaDiverged):
		httpErrorCode(w, http.StatusConflict, codeReplicaDiverged, err)
	case errors.Is(err, ErrWrongShard):
		// Bare mapping (no owner headers) for callers that did not go
		// through writeShardErr.
		httpErrorCode(w, http.StatusMisdirectedRequest, codeWrongShard, err)
	case serverDeadlineFired(r.Context()) &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		w.Header().Set("Retry-After", "1")
		httpErrorCode(w, http.StatusServiceUnavailable, codeDeadlineExceeded, err)
	default:
		httpError(w, statusOf(err), err)
	}
}

// decodeJSON decodes a POST body into v; on failure it writes the
// error response (413 request_too_large when the body cap tripped,
// 400 otherwise) and reports false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpErrorCode(w, http.StatusRequestEntityTooLarge, codeRequestTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	httpError(w, http.StatusBadRequest, err)
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorBody is the payload of the error envelope every non-2xx
// response carries: a stable machine-readable code plus human-readable
// detail.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON shape of every non-2xx response:
// {"error": {"code": "...", "message": "..."}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Stable error codes that refine the status-derived default: sealed
// mutations in degraded read-only mode, server-side deadline overruns,
// and request bodies over the POST cap.
const (
	codeDegradedReadOnly = "degraded_read_only"
	codeDeadlineExceeded = "deadline_exceeded"
	codeRequestTooLarge  = "request_too_large"
	codeNotPrimary       = "not_primary"
	codeReplicaDiverged  = "replica_diverged"
	codeWrongShard       = "wrong_shard"
	codeStaleEpoch       = "stale_epoch"
	// codeFenced refuses mutations (and promotion, and replication
	// serving) on a sealed node: a higher fencing epoch exists for its
	// history, or its supervisor lease lapsed. 409, with an
	// X-Crowdd-Primary hint when the new primary is known.
	codeFenced = "fenced"
	// codePromotionInProgress is the loser of a promotion race: another
	// promote holds the flip. 409; retry after the winner finishes.
	codePromotionInProgress = "promotion_in_progress"
	// codeForbidden refuses fleet-control requests that lack the fleet
	// token (403) when one is configured.
	codeForbidden = "forbidden"
	// codeUnknownTenant answers /api/v1/t/{name}/... for a name no
	// AddTenant registered (404).
	codeUnknownTenant = "unknown_tenant"
	// codeTenantQuotaExceeded sheds a request from a tenant over its
	// per-tenant in-flight budget (429 + Retry-After); the node itself
	// still has capacity — other tenants keep serving.
	codeTenantQuotaExceeded = "tenant_quota_exceeded"
)

// codeOf maps an HTTP status to the envelope's stable error code.
func codeOf(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return codeRequestTooLarge
	case http.StatusTooManyRequests:
		return "over_capacity"
	case statusClientClosedRequest:
		return "client_closed_request"
	case http.StatusForbidden:
		return codeForbidden
	case http.StatusMisdirectedRequest:
		return codeNotPrimary
	case http.StatusConflict:
		return codeReplicaDiverged
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	httpErrorCode(w, status, codeOf(status), err)
}

// httpErrorCode writes the envelope with an explicit code, for errors
// whose code is more specific than the status-derived default.
func httpErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: err.Error()}})
}

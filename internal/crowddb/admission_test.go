package crowddb

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for admission tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestAdmissionAdditiveIncrease(t *testing.T) {
	a := newAdmission(AdmissionConfig{Initial: 2, Min: 1, Max: 100})
	// Each healthy completion adds 1/limit; after `limit` completions
	// the limit should have grown by roughly one.
	for i := 0; i < 2; i++ {
		ok, _ := a.acquire(false)
		if !ok {
			t.Fatalf("acquire %d refused below limit", i)
		}
		a.release(time.Millisecond, false)
	}
	snap := a.snapshot()
	if snap.Limit <= 2 || snap.Limit > 3.5 {
		t.Fatalf("limit after one RTT of successes = %v, want (2, 3.5]", snap.Limit)
	}
}

func TestAdmissionMultiplicativeDecrease(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	a := newAdmission(AdmissionConfig{Initial: 100, Min: 1, Max: 100, Beta: 0.5, Clock: clk.Now})
	ok, _ := a.acquire(false)
	if !ok {
		t.Fatal("acquire refused")
	}
	a.release(time.Second, true)
	if got := a.snapshot().Limit; got != 50 {
		t.Fatalf("limit after overload = %v, want 50", got)
	}
	// A second overrun inside the decrease cooldown must NOT shrink the
	// limit again: one burst counts once.
	clk.Advance(10 * time.Millisecond)
	a.acquire(false)
	a.release(time.Second, true)
	if got := a.snapshot().Limit; got != 50 {
		t.Fatalf("limit after overload inside cooldown = %v, want 50", got)
	}
	// After the cooldown it shrinks again.
	clk.Advance(200 * time.Millisecond)
	a.acquire(false)
	a.release(time.Second, true)
	if got := a.snapshot().Limit; got != 25 {
		t.Fatalf("limit after overload past cooldown = %v, want 25", got)
	}
	if got := a.snapshot().DeadlineOverruns; got != 3 {
		t.Fatalf("overruns = %d, want 3 (cooldown suppresses the decrease, not the count)", got)
	}
}

func TestAdmissionFloorAndCeiling(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	a := newAdmission(AdmissionConfig{Initial: 4, Min: 3, Max: 5, Beta: 0.1, Clock: clk.Now})
	// Shrink below Min is clamped.
	a.acquire(false)
	a.release(time.Second, true)
	if got := a.snapshot().Limit; got != 3 {
		t.Fatalf("limit clamped to floor = %v, want 3", got)
	}
	// Grow above Max is clamped.
	for i := 0; i < 100; i++ {
		a.acquire(false)
		a.release(time.Millisecond, false)
	}
	if got := a.snapshot().Limit; got != 5 {
		t.Fatalf("limit clamped to ceiling = %v, want 5", got)
	}
}

func TestAdmissionPinnedLimit(t *testing.T) {
	// Min == Max pins the limit: SetMaxInFlight compatibility mode.
	a := newAdmission(AdmissionConfig{Initial: 4, Min: 4, Max: 4})
	for i := 0; i < 50; i++ {
		a.acquire(false)
		a.release(time.Millisecond, false)
	}
	a.acquire(false)
	a.release(time.Second, true)
	if got := a.snapshot().Limit; got != 4 {
		t.Fatalf("pinned limit drifted to %v, want 4", got)
	}
}

func TestAdmissionReadsShedBeforeMutations(t *testing.T) {
	a := newAdmission(AdmissionConfig{Initial: 4, Min: 4, Max: 4})
	// Fill the read limit.
	for i := 0; i < 4; i++ {
		if ok, _ := a.acquire(false); !ok {
			t.Fatalf("read %d refused below limit", i)
		}
	}
	// The next read is shed...
	if ok, _ := a.acquire(false); ok {
		t.Fatal("read admitted above the limit")
	}
	// ...but mutations still fit in the reserve (ceil(4/4) = 1 slot).
	if ok, _ := a.acquire(true); !ok {
		t.Fatal("mutation shed while the reserve had room")
	}
	// Reserve exhausted: now mutations shed too.
	if ok, _ := a.acquire(true); ok {
		t.Fatal("mutation admitted above limit+reserve")
	}
	snap := a.snapshot()
	if snap.ShedReads != 1 || snap.ShedMutations != 1 {
		t.Fatalf("shed counters = reads %d, mutations %d; want 1, 1", snap.ShedReads, snap.ShedMutations)
	}
	if snap.Inflight != 5 {
		t.Fatalf("inflight = %d, want 5", snap.Inflight)
	}
}

func TestAdmissionRetryAfterFromDrainRate(t *testing.T) {
	a := newAdmission(AdmissionConfig{Initial: 2, Min: 2, Max: 2})
	// Teach the EWMA a 1s service time: rate = limit/lat = 2/s.
	a.acquire(false)
	a.release(time.Second, false)
	a.avgLatency = 1.0 // pin the EWMA for a deterministic assertion
	// Fill both read slots plus the mutation reserve.
	a.acquire(false)
	a.acquire(false)
	ok, retryAfter := a.acquire(false)
	if ok {
		t.Fatal("read admitted above the limit")
	}
	// excess = inflight - limit + 1 = 1, rate = 2/s → ceil(1/2) = 1s.
	if retryAfter != 1 {
		t.Fatalf("retryAfter = %d, want 1", retryAfter)
	}
	// Pile up inflight via the mutation reserve and check the hint grows
	// with the backlog.
	a.acquire(true)
	_, retryAfter = a.acquire(false)
	// excess = 3 - 2 + 1 = 2, rate 2/s → 1s; grow the backlog on paper:
	a.inflight = 20
	_, retryAfter = a.acquire(false)
	// excess = 20 - 2 + 1 = 19, rate 2/s → ceil(9.5) = 10s.
	if retryAfter != 10 {
		t.Fatalf("retryAfter with deep backlog = %d, want 10", retryAfter)
	}
	// The clamp: an absurd backlog still caps at 30s.
	a.inflight = 100000
	_, retryAfter = a.acquire(false)
	if retryAfter != 30 {
		t.Fatalf("retryAfter clamp = %d, want 30", retryAfter)
	}
}

func TestAdmissionSnapshotRounding(t *testing.T) {
	a := newAdmission(AdmissionConfig{Initial: 3, Min: 1, Max: 100})
	a.acquire(false)
	a.release(time.Millisecond, false) // limit = 3 + 1/3 = 3.3333...
	if got := a.snapshot().Limit; got != 3.33 {
		t.Fatalf("snapshot limit = %v, want 3.33 (2dp rounding)", got)
	}
	snap := a.snapshot()
	if snap.MinLimit != 1 || snap.MaxLimit != 100 {
		t.Fatalf("snapshot bounds = [%d, %d], want [1, 100]", snap.MinLimit, snap.MaxLimit)
	}
}

package crowddb

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"crowdselect/internal/core"
)

// Background scrubbing (DESIGN.md §14): a low-priority loop that
// re-reads the current generation's at-rest files between requests and
// verifies them — journal record CRCs, snapshot and model-checkpoint
// checksums against the digests stamped in the replication sidecar
// (parse-validation when an old sidecar carries none). Corruption is
// handled exactly like a journal write failure: the node flips to
// degraded read-only mode with a typed *ScrubError before the rotten
// bytes can be served to a bootstrap or survive into a promotion, and
// the existing probe loop heals by cutting a fresh generation from the
// intact in-memory state.

// ScrubError is the typed degraded-mode reason for at-rest corruption
// found by the scrubber.
type ScrubError struct {
	Path string
	Err  error
}

func (e *ScrubError) Error() string {
	return fmt.Sprintf("crowddb: scrub: at-rest corruption in %s: %v", e.Path, e.Err)
}

func (e *ScrubError) Unwrap() error { return e.Err }

// scrubState is the scrubber's counters; all fields are safe for
// concurrent use.
type scrubState struct {
	passes   atomic.Int64 // completed scrub passes (clean or not)
	files    atomic.Int64 // files verified across all passes
	records  atomic.Int64 // journal records CRC-checked across all passes
	failures atomic.Int64 // corrupt files found across all passes
	failed   atomic.Bool  // last pass found corruption; cleared by a clean pass
	mu       sync.Mutex
	lastErr  string
}

func (sc *scrubState) setErr(err error) {
	sc.mu.Lock()
	sc.lastErr = err.Error()
	sc.mu.Unlock()
}

func (sc *scrubState) lastError() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.lastErr
}

// IntegritySnapshot is the integrity section of /api/v1/metrics and
// /readyz: scrub progress on every durable node, plus the divergence
// state machine's counters on a follower.
type IntegritySnapshot struct {
	ScrubPasses   int64  `json:"scrub_passes"`
	ScrubFiles    int64  `json:"scrub_files"`
	ScrubRecords  int64  `json:"scrub_records"`
	ScrubFailures int64  `json:"scrub_failures"`
	ScrubFailed   bool   `json:"scrub_failed"`
	LastError     string `json:"last_error,omitempty"`
	Diverged      bool   `json:"diverged,omitempty"`
	Divergences   int64  `json:"divergences,omitempty"`
	Repairs       int64  `json:"repairs,omitempty"`
}

// ScrubStats snapshots the scrubber's counters. The divergence fields
// are zero here; a replica-carrying daemon merges them from
// Replica.Status before exposing the section.
func (db *DB) ScrubStats() IntegritySnapshot {
	return IntegritySnapshot{
		ScrubPasses:   db.scrub.passes.Load(),
		ScrubFiles:    db.scrub.files.Load(),
		ScrubRecords:  db.scrub.records.Load(),
		ScrubFailures: db.scrub.failures.Load(),
		ScrubFailed:   db.scrub.failed.Load(),
		LastError:     db.scrub.lastError(),
	}
}

// Scrub runs one verification pass over the current generation's
// at-rest files. A clean pass returns nil and clears the scrub-failed
// flag; corruption enters degraded read-only mode (typed *ScrubError)
// and returns the error. Races with compaction are tolerated: a file
// that disappears or a digest that stops matching because the
// generation moved on is re-checked against the now-current generation
// before anything is declared corrupt.
func (db *DB) Scrub() error {
	if db.degraded.Load() {
		return nil // the probe loop owns the disk while degraded
	}
	gen, modelDigest, storeDigest := db.scrubBasis()
	if gen == 0 {
		return nil // nothing durable yet
	}
	err := db.scrubGeneration(gen, modelDigest, storeDigest)
	if err == nil {
		db.scrub.passes.Add(1)
		db.scrub.failed.Store(false)
		return nil
	}
	// Re-confirm the generation is still current: a compaction racing
	// the pass deletes or supersedes the files mid-read, which is not
	// corruption. The next pass verifies the new generation.
	db.mu.Lock()
	cur := db.gen
	db.mu.Unlock()
	if cur != gen || db.degraded.Load() {
		return nil
	}
	db.scrub.passes.Add(1)
	db.scrub.failures.Add(1)
	db.scrub.failed.Store(true)
	db.scrub.setErr(err)
	db.enterDegraded(err)
	return err
}

// scrubBasis captures the generation to verify together with the
// sidecar digests stamped at its cut, consistently enough that a
// racing compaction is caught by Scrub's re-confirmation.
func (db *DB) scrubBasis() (gen uint64, modelDigest, storeDigest string) {
	db.mu.Lock()
	gen = db.gen
	db.mu.Unlock()
	db.repl.mu.Lock()
	modelDigest, storeDigest = db.repl.baseModelDigest, db.repl.baseStoreDigest
	db.repl.mu.Unlock()
	return gen, modelDigest, storeDigest
}

// scrubGeneration verifies generation gen's journal, snapshot and
// model checkpoint. Missing files are skipped (a fresh follower's
// generation may predate some of them); every finding is a typed
// *ScrubError.
func (db *DB) scrubGeneration(gen uint64, modelDigest, storeDigest string) error {
	// Journal: re-walk every record's CRC. A torn tail is a live append
	// in progress, not corruption; mid-file damage is.
	jpath := db.journalPath(gen)
	if data, err := os.ReadFile(jpath); err == nil {
		n := 0
		if err := forEachJournalRecord(data, func(int, []byte, int) error { n++; return nil }); err != nil {
			return &ScrubError{Path: jpath, Err: err}
		}
		db.scrub.records.Add(int64(n))
		db.scrub.files.Add(1)
	} else if !errors.Is(err, os.ErrNotExist) {
		return &ScrubError{Path: jpath, Err: err}
	}

	// Snapshot: byte-hash against the sidecar's stamp when present,
	// full parse-validation otherwise (pre-digest generations).
	spath := filepath.Join(db.dir, fmt.Sprintf(snapshotPattern, gen))
	if data, err := os.ReadFile(spath); err == nil {
		if storeDigest != "" {
			if got := sha256Hex(data); got != storeDigest {
				return &ScrubError{Path: spath, Err: fmt.Errorf("snapshot digest %s, sidecar stamped %s", got, storeDigest)}
			}
		} else if err := NewStore().RestoreSnapshotFile(spath); err != nil {
			return &ScrubError{Path: spath, Err: err}
		}
		db.scrub.files.Add(1)
	} else if !errors.Is(err, os.ErrNotExist) {
		return &ScrubError{Path: spath, Err: err}
	}

	// Model checkpoint: same two-tier check.
	mpath := filepath.Join(db.dir, fmt.Sprintf(modelPattern, gen))
	if data, err := os.ReadFile(mpath); err == nil {
		if modelDigest != "" {
			if got := sha256Hex(data); got != modelDigest {
				return &ScrubError{Path: mpath, Err: fmt.Errorf("model digest %s, sidecar stamped %s", got, modelDigest)}
			}
		} else if _, err := core.LoadModelFile(mpath); err != nil {
			return &ScrubError{Path: mpath, Err: err}
		}
		db.scrub.files.Add(1)
	} else if !errors.Is(err, os.ErrNotExist) {
		return &ScrubError{Path: mpath, Err: err}
	}
	return nil
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// startScrubber launches the periodic scrub loop (Options.ScrubInterval
// <= 0 disables it); callers hold db.mu.
func (db *DB) startScrubber() {
	if db.opts.ScrubInterval <= 0 {
		return
	}
	db.scrubDonec = make(chan struct{})
	go func() {
		defer close(db.scrubDonec)
		ticker := time.NewTicker(db.opts.ScrubInterval)
		defer ticker.Stop()
		for {
			select {
			case <-db.stopc:
				return
			case <-ticker.C:
				if err := db.Scrub(); err != nil {
					db.opts.logf("crowddb: %v; entered degraded read-only mode", err)
				}
			}
		}
	}()
}

package crowddb

import (
	"math"
	"sync"
	"time"
)

// Adaptive admission control for the HTTP server: an AIMD concurrency
// limiter in the spirit of TCP congestion control. The admitted
// concurrency limit grows additively while requests complete inside
// their deadline budget and shrinks multiplicatively when the server
// blows a deadline — so the cap finds the real capacity of the
// hardware instead of being a number someone guessed in a flag.
//
// Shedding is priority-aware: read requests are refused once the limit
// is reached, while mutations may dip into a small reserve above it —
// a dropped read is a retry, a dropped mutation is lost crowd work —
// and probe endpoints never pass through the limiter at all. The
// Retry-After attached to a shed response is computed from the
// observed service rate (limit / smoothed latency), not hardcoded.

// AdmissionConfig tunes the adaptive limiter. The zero value of a
// field selects the default noted on it.
type AdmissionConfig struct {
	// Initial is the starting concurrency limit (default: Min).
	Initial int
	// Min is the floor the limit never shrinks below (default 1).
	Min int
	// Max is the ceiling the limit never grows above (default 4096).
	// Min == Max pins the limit: a fixed cap with no adaptation.
	Max int
	// Beta is the multiplicative-decrease factor applied on overload
	// (default 0.7).
	Beta float64
	// DecreaseCooldown is the minimum spacing between two decreases, so
	// one burst of deadline overruns counts once (default 100ms).
	DecreaseCooldown time.Duration
	// Clock replaces time.Now (tests).
	Clock func() time.Time
}

// admission is the limiter state. All methods are safe for concurrent
// use.
type admission struct {
	mu           sync.Mutex
	limit        float64
	min, max     float64
	beta         float64
	cooldown     time.Duration
	lastDecrease time.Time
	inflight     int
	avgLatency   float64 // EWMA, seconds
	shedReads    int64
	shedWrites   int64
	overruns     int64
	clock        func() time.Time
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = 4096
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Initial <= 0 {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial > cfg.Max {
		cfg.Initial = cfg.Max
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		cfg.Beta = 0.7
	}
	if cfg.DecreaseCooldown <= 0 {
		cfg.DecreaseCooldown = 100 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &admission{
		limit:    float64(cfg.Initial),
		min:      float64(cfg.Min),
		max:      float64(cfg.Max),
		beta:     cfg.Beta,
		cooldown: cfg.DecreaseCooldown,
		clock:    cfg.Clock,
	}
}

// mutationReserve is the headroom above the read limit that mutations
// may still use: reads shed first.
func (a *admission) mutationReserve() int {
	r := int(math.Ceil(a.limit / 4))
	if r < 1 {
		r = 1
	}
	return r
}

// acquire admits or sheds one request. When shed (ok == false),
// retryAfter is the drain-based hint in whole seconds.
func (a *admission) acquire(mutation bool) (ok bool, retryAfter int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cap := int(a.limit)
	if mutation {
		cap += a.mutationReserve()
	}
	if a.inflight < cap {
		a.inflight++
		return true, 0
	}
	if mutation {
		a.shedWrites++
	} else {
		a.shedReads++
	}
	return false, a.retryAfterLocked()
}

// retryAfterLocked estimates how long until the backlog above the
// limit drains: excess requests divided by the observed service rate
// (limit / smoothed latency), clamped to [1s, 30s].
func (a *admission) retryAfterLocked() int {
	excess := float64(a.inflight-int(a.limit)) + 1
	if excess < 1 {
		excess = 1
	}
	lat := a.avgLatency
	if lat <= 0 {
		lat = 0.05 // no samples yet: assume a 50ms service time
	}
	rate := a.limit / lat // completions per second
	if rate <= 0 {
		rate = 1
	}
	secs := int(math.Ceil(excess / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// release completes one admitted request. overloaded marks a
// server-side deadline overrun: the AIMD decrease signal. A healthy
// completion is the additive-increase signal.
func (a *admission) release(latency time.Duration, overloaded bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight > 0 {
		a.inflight--
	}
	sec := latency.Seconds()
	if a.avgLatency == 0 {
		a.avgLatency = sec
	} else {
		a.avgLatency = 0.9*a.avgLatency + 0.1*sec
	}
	if overloaded {
		a.overruns++
		now := a.clock()
		if now.Sub(a.lastDecrease) >= a.cooldown {
			a.lastDecrease = now
			a.limit *= a.beta
			if a.limit < a.min {
				a.limit = a.min
			}
		}
		return
	}
	// Additive increase: +1 per limit's worth of successes (one RTT of
	// full-rate traffic), like TCP's congestion-avoidance ramp.
	a.limit += 1 / a.limit
	if a.limit > a.max {
		a.limit = a.max
	}
}

// AdmissionSnapshot is the admission-control section of
// GET /api/v1/metrics.
type AdmissionSnapshot struct {
	Limit            float64 `json:"limit"`
	MinLimit         int     `json:"min_limit"`
	MaxLimit         int     `json:"max_limit"`
	Inflight         int     `json:"inflight"`
	ShedReads        int64   `json:"shed_reads"`
	ShedMutations    int64   `json:"shed_mutations"`
	DeadlineOverruns int64   `json:"deadline_overruns"`
	AvgLatencyMs     float64 `json:"avg_latency_ms"`
}

func (a *admission) snapshot() AdmissionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionSnapshot{
		Limit:            math.Round(a.limit*100) / 100,
		MinLimit:         int(a.min),
		MaxLimit:         int(a.max),
		Inflight:         a.inflight,
		ShedReads:        a.shedReads,
		ShedMutations:    a.shedWrites,
		DeadlineOverruns: a.overruns,
		AvgLatencyMs:     a.avgLatency * 1000,
	}
}

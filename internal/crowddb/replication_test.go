package crowddb

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
)

// replPrimary boots a durable primary with its dataset persisted and
// its replication source served over httptest, ready for followers.
func replPrimary(t *testing.T) (*durableRig, *ReplicationSource, *httptest.Server) {
	t.Helper()
	d, model := trainedFixture(t)
	rig := openDurable(t, t.TempDir(), d, model, Options{Sync: SyncAlways()})
	t.Cleanup(func() { rig.db.Close() })
	if err := d.SaveFile(rig.db.DatasetPath()); err != nil {
		t.Fatal(err)
	}
	src := NewReplicationSource(rig.db, ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	src.SetDigest(NewDigestCutter(rig.db, rig.mgr).Func())
	ts := httptest.NewServer(src)
	t.Cleanup(ts.Close)
	return rig, src, ts
}

// testReplicaBuilder is the cmd/crowdd Build callback in miniature.
func testReplicaBuilder() ReplicaBuilder {
	return func(datasetPath string, model *core.Model, store *Store) (*Manager, *core.ConcurrentModel, error) {
		d, err := corpus.LoadFile(datasetPath)
		if err != nil {
			return nil, nil, err
		}
		cm := core.NewConcurrentModel(model)
		mgr, err := NewManager(store, d.Vocab, cm, 2)
		if err != nil {
			return nil, nil, err
		}
		return mgr, cm, nil
	}
}

func startTestReplica(t *testing.T, primary, dir string) *Replica {
	t.Helper()
	rep, err := StartReplica(ReplicaOptions{
		Primary:          primary,
		Dir:              dir,
		DB:               Options{Sync: SyncAlways()},
		Build:            testReplicaBuilder(),
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// killPrimary is the primary's crash, as seen from a follower: live
// stream connections are severed before the listener shuts, because
// httptest's Close waits out in-flight handlers and a replication
// stream only ends when its connection does.
func killPrimary(ts *httptest.Server) {
	ts.CloseClientConnections()
	ts.Close()
}

// waitCaughtUp blocks until the replica's applied position equals the
// primary's committed head.
func waitCaughtUp(t *testing.T, rig *durableRig, rep *Replica) {
	t.Helper()
	waitUntil(t, "replica caught up", func() bool {
		pseq, _ := rig.db.ReplicationHead()
		// Status().AppliedSeq advances only after a record's side
		// effects (model updates included) finish, so tests that
		// inspect the model after this wait are race-free.
		return rep.Status().AppliedSeq == pseq
	})
}

func TestReplicationFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(`{"a":1}`), {}, bytes.Repeat([]byte("x"), 4096)}
	types := []byte{frameHello, frameRecord, frameSnapshot}
	for i, p := range payloads {
		if err := writeReplFrame(&buf, types[i], p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	var off int64
	for i, want := range payloads {
		typ, payload, n, err := readReplFrame(r, off)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != types[i] || !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: type %d payload %d bytes, want type %d %d bytes", i, typ, len(payload), types[i], len(want))
		}
		off += n
	}
	if _, _, _, err := readReplFrame(r, off); err != io.EOF {
		t.Fatalf("tail read err = %v, want io.EOF", err)
	}
}

func TestReplicationFrameDecoderRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeReplFrame(&buf, frameRecord, []byte(`{"seq":1}`)); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	flip := append([]byte(nil), frame...)
	flip[len(flip)-1] ^= 0xff
	var fe *FrameError
	if _, _, _, err := readReplFrame(bytes.NewReader(flip), 0); !errors.As(err, &fe) {
		t.Fatalf("corrupt payload err = %v, want *FrameError", err)
	}

	// A truncated frame is a *FrameError too: unlike the journal's torn
	// tail, a cut TCP stream must surface as an error so the follower
	// reconnects rather than treating the cut as a clean end.
	if _, _, _, err := readReplFrame(bytes.NewReader(frame[:len(frame)-3]), 0); !errors.As(err, &fe) {
		t.Fatalf("truncated frame err = %v, want *FrameError", err)
	}

	oversize := []byte{frameRecord, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, _, err := readReplFrame(bytes.NewReader(oversize), 0); !errors.As(err, &fe) {
		t.Fatalf("oversize frame err = %v, want *FrameError", err)
	}
}

func TestReplicaBootstrapAndLiveStream(t *testing.T) {
	rig, src, ts := replPrimary(t)
	rig.resolveOneTask(t, "classify this photograph of a cat", []float64{4, 2})

	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()

	// Live records after the bootstrap.
	rig.resolveOneTask(t, "translate this sentence into french", []float64{5, 3})
	rig.resolveOneTask(t, "is this review positive or negative", []float64{1, 4})
	waitCaughtUp(t, rig, rep)

	assertModelsEqual(t, rig.cm.Unwrap(), rep.Model().Unwrap())
	if got, want := rep.DB().Store().NumTasks(), rig.db.Store().NumTasks(); got != want {
		t.Fatalf("replica stores %d tasks, primary %d", got, want)
	}
	if rep.DB().ReplicationHistory() != rig.db.ReplicationHistory() {
		t.Fatalf("replica history %s != primary %s", rep.DB().ReplicationHistory(), rig.db.ReplicationHistory())
	}

	// A caught-up replica ranks identically, element-wise.
	reqs := []TaskSubmission{{Text: "classify this photograph of a dog"}, {Text: "translate this review"}}
	want, err := rig.mgr.RankOnly(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Manager().RankOnly(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("selection rankings diverge:\nprimary %v\nreplica %v", want, got)
	}

	st := rep.Status()
	if st.Role != RoleReplica || !st.Connected || st.Lag == nil || st.Lag.Records != 0 {
		t.Fatalf("unexpected replica status: %+v", st)
	}
	if src.Followers() != 1 {
		t.Fatalf("source reports %d followers, want 1", src.Followers())
	}
}

func TestReplicaRestartResumesFromItsOwnJournal(t *testing.T) {
	rig, _, ts := replPrimary(t)
	dir := t.TempDir()
	rep := startTestReplica(t, ts.URL, dir)
	rig.resolveOneTask(t, "label the sentiment of this tweet", []float64{4, 2})
	waitCaughtUp(t, rig, rep)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is down.
	rig.resolveOneTask(t, "extract the city names from this text", []float64{3, 5})

	rep = startTestReplica(t, ts.URL, dir)
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	assertModelsEqual(t, rig.cm.Unwrap(), rep.Model().Unwrap())
	if rep.Status().Bootstraps != 0 {
		t.Fatalf("restart re-bootstrapped (%d) instead of resuming", rep.Status().Bootstraps)
	}
}

func TestReplicaRebootstrapsWhenBehindCompaction(t *testing.T) {
	rig, _, ts := replPrimary(t)
	dir := t.TempDir()
	rep := startTestReplica(t, ts.URL, dir)
	rig.resolveOneTask(t, "first task before the follower naps", []float64{4, 2})
	waitCaughtUp(t, rig, rep)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction moves the primary's base past the sleeping follower's
	// position: its resume offset now predates the oldest journal.
	rig.resolveOneTask(t, "second task while the follower is down", []float64{5, 1})
	if err := rig.db.Compact(); err != nil {
		t.Fatal(err)
	}
	rig.resolveOneTask(t, "third task lands in the fresh journal", []float64{2, 4})

	rep = startTestReplica(t, ts.URL, dir)
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	if rep.Status().Bootstraps == 0 {
		t.Fatal("follower behind compaction never re-bootstrapped")
	}
	assertModelsEqual(t, rig.cm.Unwrap(), rep.Model().Unwrap())
	if got, want := rep.DB().Store().NumTasks(), rig.db.Store().NumTasks(); got != want {
		t.Fatalf("replica stores %d tasks, primary %d", got, want)
	}
}

func TestReplicaPromote(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "the last task the old primary commits", []float64{4, 2})
	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	wantModel := rig.cm.Unwrap()

	killPrimary(ts) // primary dies
	if err := rep.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := rep.Status(); st.Role != RolePrimary {
		t.Fatalf("promoted replica reports role %q", st.Role)
	}
	assertModelsEqual(t, wantModel, rep.Model().Unwrap())

	// The promoted node accepts and journals new mutations.
	before, _ := rep.DB().ReplicationHead()
	sub, err := rep.Manager().SubmitTask(context.Background(), "a brand new task on the new primary", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Workers) == 0 {
		t.Fatal("promoted primary selected no workers")
	}
	after, _ := rep.DB().ReplicationHead()
	if after <= before {
		t.Fatalf("promotion left the journal position stuck at %d", after)
	}

	// Promote is idempotent.
	if err := rep.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPromotedReplicaFeedsItsOwnFollowers(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "seed task from the original primary", []float64{4, 2})
	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()
	waitCaughtUp(t, rig, rep)
	killPrimary(ts)
	if err := rep.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Serve the promoted node's journal; a second-tier follower
	// bootstraps from it and tracks its new writes.
	src2 := NewReplicationSource(rep.DB(), ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	ts2 := httptest.NewServer(src2)
	defer ts2.Close()
	rep2 := startTestReplica(t, ts2.URL, t.TempDir())
	defer rep2.Close()

	if _, err := rep.Manager().SubmitTask(context.Background(), "written after failover", 2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "second-tier follower caught up", func() bool {
		pseq, _ := rep.DB().ReplicationHead()
		rseq, _ := rep2.DB().ReplicationHead()
		return rseq == pseq
	})
	assertModelsEqual(t, rep.Model().Unwrap(), rep2.Model().Unwrap())
}

func TestReplicaDivergenceRefused(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "only committed task", []float64{4, 2})
	head, _ := rig.db.ReplicationHead()

	// A follower claiming records the primary never committed, in the
	// primary's own history, must be refused — not silently rewound.
	u := fmt.Sprintf("%s/api/v1/replication/stream?from=%d&history=%s", ts.URL, head+10, rig.db.ReplicationHistory())
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diverged resume got %s, want 409", resp.Status)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != codeReplicaDiverged {
		t.Fatalf("diverged resume envelope = %+v (err %v), want code %s", env, err, codeReplicaDiverged)
	}
}

// TestServerReplicaGate drives the HTTP layer: a replica-role server
// refuses mutations with 421 and a primary redirect, keeps serving
// pure selections, reports role and lag in /readyz and /api/v1/metrics,
// and flips to primary through the promote endpoint.
func TestServerReplicaGate(t *testing.T) {
	rig, _, ts := replPrimary(t)
	rig.resolveOneTask(t, "one committed task", []float64{4, 2})
	rep := startTestReplica(t, ts.URL, t.TempDir())
	defer rep.Close()
	waitCaughtUp(t, rig, rep)

	srv := NewServer(rep.Manager())
	srv.SetRole(RoleReplica)
	srv.SetReplicationStatus(rep.Status)
	srv.SetPromoter(rep.Promote)
	rts := httptest.NewServer(srv)
	defer rts.Close()

	// Mutations are refused with the primary's address attached.
	resp, err := http.Post(rts.URL+"/api/v1/tasks", "application/json", bytes.NewBufferString(`{"text":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("mutation on replica got %s (%s), want 421", resp.Status, body)
	}
	if got := resp.Header.Get("X-Crowdd-Primary"); got != ts.URL {
		t.Fatalf("X-Crowdd-Primary = %q, want %q", got, ts.URL)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != codeNotPrimary {
		t.Fatalf("replica refusal envelope = %s, want code %s", body, codeNotPrimary)
	}

	// Pure selections keep serving.
	resp, err = http.Post(rts.URL+"/api/v1/selections", "application/json",
		bytes.NewBufferString(`{"tasks":[{"text":"classify this photograph"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selections on replica got %s, want 200", resp.Status)
	}

	// /readyz carries role and lag.
	resp, err = http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Role != RoleReplica || ready.Replication == nil || ready.Replication.Lag == nil {
		t.Fatalf("readyz = %+v, want replica role with replication lag", ready)
	}

	// /api/v1/metrics carries the same status block.
	resp, err = http.Get(rts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Replication == nil || snap.Replication.Role != RoleReplica {
		t.Fatalf("metrics replication block = %+v, want replica role", snap.Replication)
	}

	// Promote over HTTP: the role flips and mutations are accepted.
	killPrimary(ts)
	resp, err = http.Post(rts.URL+"/api/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st ReplicationStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Role != RolePrimary {
		t.Fatalf("promote got %s role %q, want 200 primary", resp.Status, st.Role)
	}
	resp, err = http.Post(rts.URL+"/api/v1/tasks", "application/json", bytes.NewBufferString(`{"text":"accepted now"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutation after promote got %s, want 201", resp.Status)
	}
}

// TestPinnedGenerationSurvivesCompaction covers the bootstrap-reader
// GC race: a stream that pinned generation N must keep N's files
// readable while compaction races past it, and the sweep must happen
// once the pin drops.
func TestPinnedGenerationSurvivesCompaction(t *testing.T) {
	rig, _, _ := replPrimary(t)
	rig.resolveOneTask(t, "a task in the pinned generation", []float64{4, 2})

	gen, _, _, unpin, err := rig.db.PinGeneration()
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		filepath.Join(rig.db.dir, fmt.Sprintf(snapshotPattern, gen)),
		filepath.Join(rig.db.dir, fmt.Sprintf(modelPattern, gen)),
		rig.db.journalPath(gen),
		rig.db.replSidecarPath(gen),
	}

	// Two compactions race past the pinned reader.
	for i := 0; i < 2; i++ {
		rig.resolveOneTask(t, fmt.Sprintf("task during compaction %d", i), []float64{3, 3})
		if err := rig.db.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if rig.db.Generation() <= gen {
		t.Fatalf("compaction never advanced past generation %d", gen)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("pinned generation file lost during compaction: %v", err)
		}
	}
	// The pinned journal is still readable end to end.
	data, err := os.ReadFile(rig.db.journalPath(gen))
	if err != nil {
		t.Fatal(err)
	}
	if err := forEachJournalRecord(data, func(int, []byte, int) error { return nil }); err != nil {
		t.Fatalf("pinned journal unreadable: %v", err)
	}

	unpin()
	for _, p := range paths {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("unpinned generation file %s not swept (err %v)", p, err)
		}
	}
	unpin() // idempotent
}

// FuzzReplicationFrameDecoder asserts the stream decoder never panics
// and fails only with its typed error: any byte soup yields frames
// until io.EOF or a *FrameError, nothing else.
func FuzzReplicationFrameDecoder(f *testing.F) {
	valid := func(frames ...[]byte) []byte {
		var buf bytes.Buffer
		for i, p := range frames {
			typ := []byte{frameHello, frameRecord, frameHeartbeat, frameSnapshot}[i%4]
			if err := writeReplFrame(&buf, typ, p); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(valid([]byte(`{"history":"abc","seq":1}`)))
	f.Add(valid([]byte(`{"seq":1,"bytes":10,"event":{}}`), []byte(`{"seq":2}`), []byte{}))
	f.Add(valid([]byte(`x`))[:3]) // truncated header
	corrupt := valid([]byte(`{"seq":9}`))
	corrupt[len(corrupt)-2] ^= 0x41
	f.Add(corrupt)
	f.Add([]byte{frameRecord, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // oversize length
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})                       // unknown type, empty frame
	f.Add([]byte("\x05\x03\x00\x00\x00\xde\xad\xbe\xefabc"))       // bad checksum
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var off int64
		for {
			_, payload, n, err := readReplFrame(r, off)
			if err != nil {
				if err == io.EOF {
					return
				}
				var fe *FrameError
				if !errors.As(err, &fe) {
					t.Fatalf("decoder failed with untyped error %T: %v", err, err)
				}
				return
			}
			if n <= 0 {
				t.Fatal("decoder returned a frame without consuming bytes")
			}
			if len(payload) > maxReplFrameSize {
				t.Fatalf("decoder returned %d-byte payload over the cap", len(payload))
			}
			off += n
		}
	})
}

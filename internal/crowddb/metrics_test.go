package crowddb

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdselect/internal/core"
)

func TestMetricsObserveAndSnapshot(t *testing.T) {
	m := NewMetrics()
	// 90 fast requests, 10 slow, 5 of them errors.
	for i := 0; i < 90; i++ {
		m.Observe("POST /api/tasks", 201, 2*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		status := 200
		if i < 5 {
			status = 500
		}
		m.Observe("POST /api/tasks", status, 80*time.Millisecond)
	}
	m.Observe("GET /api/stats", 200, 1*time.Millisecond)

	snap := m.Snapshot()
	if snap.Requests != 101 || snap.Errors != 5 {
		t.Errorf("totals = %d/%d, want 101/5", snap.Requests, snap.Errors)
	}
	ep := snap.Endpoints["POST /api/tasks"]
	if ep.Count != 100 || ep.Errors != 5 {
		t.Fatalf("endpoint = %+v", ep)
	}
	// p50 sits in the fast bucket, p99 in the slow one.
	if ep.P50Ms > 5 {
		t.Errorf("p50 = %gms, want <= 5ms", ep.P50Ms)
	}
	if ep.P99Ms < 25 || ep.P99Ms > 250 {
		t.Errorf("p99 = %gms, want within the slow bucket", ep.P99Ms)
	}
	if ep.MaxMs < 75 {
		t.Errorf("max = %gms", ep.MaxMs)
	}
	if ep.MeanMs <= 0 || ep.MeanMs > 80 {
		t.Errorf("mean = %gms", ep.MeanMs)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime = %g", snap.UptimeSeconds)
	}
}

func TestMetricsOverflowBucketReportsMax(t *testing.T) {
	m := NewMetrics()
	m.Observe("GET /x", 200, 42*time.Second) // beyond the last bound
	ep := m.Snapshot().Endpoints["GET /x"]
	if ep.P50Ms != 42000 || ep.P99Ms != 42000 {
		t.Errorf("overflow quantiles = %g/%g, want 42000", ep.P50Ms, ep.P99Ms)
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Observe(fmt.Sprintf("GET /e%d", g%2), 200, time.Millisecond)
				if i%10 == 0 {
					m.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Snapshot().Requests; got != 800 {
		t.Errorf("requests = %d, want 800", got)
	}
}

func TestEndpointLabelNormalizesIDs(t *testing.T) {
	cases := map[string]string{
		"/api/tasks/17/feedback": "POST /api/tasks/{id}/feedback",
		"/api/tasks/9":           "POST /api/tasks/{id}",
		"/api/workers/0":         "POST /api/workers/{id}",
		"/api/stats":             "POST /api/stats",
	}
	for path, want := range cases {
		r := httptest.NewRequest("POST", path, nil)
		if got := endpointLabel(r); got != want {
			t.Errorf("endpointLabel(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestMetricsEndpointReportsCacheAndShard pins the /api/v1/metrics
// additions: the projection-cache section (including the disabled
// marker — a disabled cache must not report phantom misses) and the
// shard identity section.
func TestMetricsEndpointReportsCacheAndShard(t *testing.T) {
	d, model := trainedFixture(t)
	store := NewStore()
	for i := range d.Workers {
		if _, err := store.AddWorker(i, fmt.Sprintf("worker-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cm := core.NewConcurrentModel(model)
	mgr, err := NewManager(store, d.Vocab, cm, 3)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetShard(ShardSpec{Index: 1, Count: 2})
	srv := NewServer(mgr)
	srv.SetCacheStats(cm.CacheStats)
	if err := srv.SetTopology(Topology{Epoch: 7, Count: 2, Shards: []ShardAddr{
		{Index: 0, URL: "http://a"}, {Index: 1, URL: "http://b"},
	}}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	fetch := func() MetricsSnapshot {
		t.Helper()
		resp, err := http.Get(hs.URL + "/api/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap MetricsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	cm.SetProjectionCacheCapacity(0)
	project := func() {
		t.Helper()
		text := strings.Join(d.Tasks[0].Tokens, " ")
		if _, err := mgr.RankOnly(context.Background(), []TaskSubmission{{Text: text, K: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	project()
	snap := fetch()
	if snap.Cache == nil {
		t.Fatal("metrics missing cache section")
	}
	if !snap.Cache.Disabled {
		t.Error("disabled cache not marked disabled")
	}
	if snap.Cache.Misses != 0 || snap.Cache.Hits != 0 {
		t.Errorf("disabled cache counted lookups: %+v", snap.Cache)
	}
	if snap.Shard == nil {
		t.Fatal("metrics missing shard section")
	}
	if snap.Shard.Index != 1 || snap.Shard.Count != 2 || snap.Shard.Epoch != 7 {
		t.Errorf("shard section = %+v", snap.Shard)
	}

	cm.SetProjectionCacheCapacity(8)
	project()
	project()
	snap = fetch()
	if snap.Cache.Disabled {
		t.Error("enabled cache still marked disabled")
	}
	if snap.Cache.Misses == 0 || snap.Cache.Hits == 0 {
		t.Errorf("enabled cache not counting: %+v", snap.Cache)
	}
}

// TestMetricsIntegritySchema pins the wire names of the scrub and
// divergence counters: dashboards and the fleet supervisor key on
// them, so a rename is a breaking change this test must catch.
func TestMetricsIntegritySchema(t *testing.T) {
	snap := MetricsSnapshot{Integrity: &IntegritySnapshot{
		ScrubPasses: 1, ScrubFiles: 2, ScrubRecords: 3, ScrubFailures: 4,
		ScrubFailed: true, LastError: "crc mismatch",
		Diverged: true, Divergences: 5, Repairs: 6,
	}}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	raw, ok := m["integrity"]
	if !ok {
		t.Fatal("metrics snapshot has no integrity section")
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"scrub_passes", "scrub_files", "scrub_records", "scrub_failures",
		"scrub_failed", "last_error", "diverged", "divergences", "repairs",
	} {
		if _, ok := fields[key]; !ok {
			t.Errorf("integrity section missing %q: %s", key, raw)
		}
	}
}

package optimize

import (
	"math"
	"math/rand"
	"testing"

	"crowdselect/internal/linalg"
)

// quadratic builds f(x) = ½ xᵀAx − bᵀx with SPD A; the minimum solves
// Ax = b.
func quadratic(a *linalg.Matrix, b linalg.Vector) Problem {
	return Problem{
		Eval: func(x linalg.Vector) float64 {
			return 0.5*a.QuadForm(x, x) - b.Dot(x)
		},
		Grad: func(x, g linalg.Vector) {
			ax := a.MulVec(x)
			for i := range g {
				g[i] = ax[i] - b[i]
			}
		},
	}
}

func TestCGQuadratic(t *testing.T) {
	a := linalg.NewMatrixFrom(2, 2, []float64{3, 1, 1, 2})
	b := linalg.Vector{1, 2}
	want, err := linalg.SPDSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := ConjugateGradient(quadratic(a, b), linalg.Vector{10, -10}, Settings{})
	if !res.X.Equal(want, 1e-4) {
		t.Errorf("CG = %v (status %v), want %v", res.X, res.Status, want)
	}
	if res.Status != GradientConverged && res.Status != FunctionConverged {
		t.Errorf("status = %v", res.Status)
	}
}

func TestCGRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		raw := linalg.NewMatrix(n, n)
		for i := range raw.Data {
			raw.Data[i] = rng.NormFloat64()
		}
		a := raw.T().Mul(raw).AddScalarDiagInPlace(float64(n)).Symmetrize()
		b := make(linalg.Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := linalg.SPDSolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x0 := make(linalg.Vector, n)
		res := ConjugateGradient(quadratic(a, b), x0, Settings{MaxIter: 500, GradTol: 1e-8, FuncTol: 1e-15})
		if !res.X.Equal(want, 1e-4) {
			t.Fatalf("trial %d: CG off by %v", trial, res.X.Sub(want).NormInf())
		}
	}
}

func TestCGRosenbrock(t *testing.T) {
	rosen := Problem{
		Eval: func(x linalg.Vector) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Grad: func(x, g linalg.Vector) {
			b := x[1] - x[0]*x[0]
			g[0] = -2*(1-x[0]) - 400*x[0]*b
			g[1] = 200 * b
		},
	}
	res := ConjugateGradient(rosen, linalg.Vector{-1.2, 1}, Settings{MaxIter: 20000, GradTol: 1e-7})
	if !res.X.Equal(linalg.Vector{1, 1}, 1e-3) {
		t.Errorf("Rosenbrock: got %v after %d iters (status %v)", res.X, res.Iterations, res.Status)
	}
}

func TestCGImmediateConvergence(t *testing.T) {
	a := linalg.Identity(2)
	b := linalg.Vector{1, 1}
	res := ConjugateGradient(quadratic(a, b), linalg.Vector{1, 1}, Settings{})
	if res.Status != GradientConverged || res.Iterations != 0 {
		t.Errorf("at-optimum start: status %v iterations %d", res.Status, res.Iterations)
	}
}

func TestCGDoesNotModifyX0(t *testing.T) {
	x0 := linalg.Vector{5, 5}
	ConjugateGradient(quadratic(linalg.Identity(2), linalg.Vector{0, 0}), x0, Settings{})
	if !x0.Equal(linalg.Vector{5, 5}, 0) {
		t.Errorf("x0 modified: %v", x0)
	}
}

func TestGradientDescentQuadratic(t *testing.T) {
	a := linalg.NewMatrixFrom(2, 2, []float64{2, 0, 0, 4})
	b := linalg.Vector{2, 4}
	res := GradientDescent(quadratic(a, b), linalg.Vector{9, 9}, Settings{MaxIter: 2000, GradTol: 1e-8})
	if !res.X.Equal(linalg.Vector{1, 1}, 1e-4) {
		t.Errorf("GD = %v, want [1 1]", res.X)
	}
}

func TestCGBeatsGDIterationsOnIllConditioned(t *testing.T) {
	a := linalg.NewDiag(linalg.Vector{1, 100})
	b := linalg.Vector{1, 100}
	p := quadratic(a, b)
	set := Settings{MaxIter: 5000, GradTol: 1e-8}
	cg := ConjugateGradient(p, linalg.Vector{50, -50}, set)
	gd := GradientDescent(p, linalg.Vector{50, -50}, set)
	if cg.Iterations >= gd.Iterations {
		t.Errorf("CG (%d iters) not faster than GD (%d iters)", cg.Iterations, gd.Iterations)
	}
}

func TestNumericalGradientMatchesAnalytic(t *testing.T) {
	a := linalg.NewMatrixFrom(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 5})
	b := linalg.Vector{1, -2, 0.5}
	p := quadratic(a, b)
	x := linalg.Vector{0.3, -1.1, 2.2}
	ga := make(linalg.Vector, 3)
	gn := make(linalg.Vector, 3)
	p.Grad(x, ga)
	NumericalGradient(p.Eval, x, 1e-6, gn)
	if !ga.Equal(gn, 1e-5) {
		t.Errorf("analytic %v vs numeric %v", ga, gn)
	}
}

func TestLineSearchFailureOnDivergentObjective(t *testing.T) {
	// Unbounded-below linear objective: every step helps, so the line
	// search always succeeds; use the iteration limit instead to be
	// sure the loop terminates.
	p := Problem{
		Eval: func(x linalg.Vector) float64 { return x[0] },
		Grad: func(x, g linalg.Vector) { g[0] = 1 },
	}
	res := ConjugateGradient(p, linalg.Vector{0}, Settings{MaxIter: 10})
	if res.Status != IterationLimit {
		t.Errorf("status = %v, want iteration limit", res.Status)
	}
	// NaN-producing objective: the line search must bail out and the
	// best iterate so far must be returned finite.
	nan := Problem{
		Eval: func(x linalg.Vector) float64 {
			if x[0] != 0 {
				return math.NaN()
			}
			return 0
		},
		Grad: func(x, g linalg.Vector) { g[0] = 1 },
	}
	res = ConjugateGradient(nan, linalg.Vector{0}, Settings{MaxIter: 10, MaxBacktracks: 5})
	if res.Status != LineSearchFailed {
		t.Errorf("status = %v, want line search failed", res.Status)
	}
	if !res.X.IsFinite() {
		t.Errorf("returned non-finite iterate %v", res.X)
	}
}

func TestArmijoRejectsNegativeInfObjective(t *testing.T) {
	// An objective that returns −Inf off its domain (here x > 1)
	// trivially satisfies the sufficient-decrease inequality, so a line
	// search that only screens NaN would accept the divergent step and
	// poison every later iterate. The backtracking must shrink past the
	// domain boundary instead and keep the iterate finite.
	p := Problem{
		Eval: func(x linalg.Vector) float64 {
			if x[0] > 1 {
				return math.Inf(-1)
			}
			return (x[0] - 1) * (x[0] - 1)
		},
		Grad: func(x, g linalg.Vector) {
			if x[0] > 1 {
				g[0] = math.Inf(-1)
				return
			}
			g[0] = 2 * (x[0] - 1)
		},
	}
	for name, min := range map[string]func(Problem, linalg.Vector, Settings) Result{
		"cg": ConjugateGradient,
		"gd": GradientDescent,
	} {
		res := min(p, linalg.Vector{-3}, Settings{MaxIter: 100, InitialStep: 4})
		if !res.X.IsFinite() || math.IsInf(res.F, 0) || math.IsNaN(res.F) {
			t.Errorf("%s: accepted a non-finite trial: X=%v F=%v", name, res.X, res.F)
		}
		if math.Abs(res.X[0]-1) > 1e-3 {
			t.Errorf("%s: X = %v, want ≈ 1 (status %v)", name, res.X, res.Status)
		}
	}
}

func TestConvergedStartReportsZeroIterations(t *testing.T) {
	// Starting at the optimum, both minimizers must report the
	// converged status without charging an iteration or running a line
	// search.
	evals := 0
	a := linalg.Identity(2)
	b := linalg.Vector{1, 1}
	base := quadratic(a, b)
	p := Problem{
		Eval: func(x linalg.Vector) float64 { evals++; return base.Eval(x) },
		Grad: base.Grad,
	}
	for name, min := range map[string]func(Problem, linalg.Vector, Settings) Result{
		"cg": ConjugateGradient,
		"gd": GradientDescent,
	} {
		evals = 0
		res := min(p, linalg.Vector{1, 1}, Settings{})
		if res.Status != GradientConverged || res.Iterations != 0 {
			t.Errorf("%s: status %v iterations %d, want gradient converged at 0", name, res.Status, res.Iterations)
		}
		if evals > 1 {
			t.Errorf("%s: %d objective evaluations at a converged start (line search ran)", name, evals)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		GradientConverged: "gradient converged",
		FunctionConverged: "function converged",
		IterationLimit:    "iteration limit",
		LineSearchFailed:  "line search failed",
		Status(99):        "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestSettingsDefaults(t *testing.T) {
	s := Settings{}.withDefaults()
	if s.MaxIter != 200 || s.GradTol != 1e-6 || s.InitialStep != 1 || s.Backtrack != 0.5 {
		t.Errorf("defaults = %+v", s)
	}
	// Invalid values are normalized too.
	s = Settings{Backtrack: 2, ArmijoC: -1}.withDefaults()
	if s.Backtrack != 0.5 || s.ArmijoC != 1e-4 {
		t.Errorf("normalized = %+v", s)
	}
}

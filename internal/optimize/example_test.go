package optimize_test

import (
	"fmt"

	"crowdselect/internal/linalg"
	"crowdselect/internal/optimize"
)

func ExampleConjugateGradient() {
	// Minimize f(x, y) = (x−1)² + 2(y+3)².
	p := optimize.Problem{
		Eval: func(x linalg.Vector) float64 {
			return (x[0]-1)*(x[0]-1) + 2*(x[1]+3)*(x[1]+3)
		},
		Grad: func(x, g linalg.Vector) {
			g[0] = 2 * (x[0] - 1)
			g[1] = 4 * (x[1] + 3)
		},
	}
	res := optimize.ConjugateGradient(p, linalg.Vector{0, 0}, optimize.Settings{})
	fmt.Printf("%.3f %.3f\n", res.X[0], res.X[1])
	// Output: 1.000 -3.000
}

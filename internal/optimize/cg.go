// Package optimize implements the smooth unconstrained minimizers used
// by the variational algorithm of the paper: nonlinear conjugate
// gradient (Polak–Ribière+ with automatic restarts and Armijo
// backtracking), plain gradient descent for ablations, and a numerical
// gradient checker for tests.
//
// All routines minimize; callers maximizing a lower bound L′(q) pass
// −L′ and −∇L′.
package optimize

import (
	"math"

	"crowdselect/internal/linalg"
)

// Problem bundles an objective and its gradient.
type Problem struct {
	// Eval returns the objective value at x.
	Eval func(x linalg.Vector) float64
	// Grad writes the gradient at x into g (len(g) == len(x)).
	Grad func(x linalg.Vector, g linalg.Vector)
}

// Settings controls the iteration. The zero value is usable: it is
// normalized by (*Settings).withDefaults.
type Settings struct {
	// MaxIter bounds the number of CG iterations (default 200).
	MaxIter int
	// GradTol stops when ‖∇f‖∞ ≤ GradTol (default 1e-6).
	GradTol float64
	// FuncTol stops when the relative objective improvement over one
	// iteration falls below FuncTol (default 1e-10).
	FuncTol float64
	// InitialStep is the first trial step of each line search
	// (default 1).
	InitialStep float64
	// ArmijoC is the sufficient-decrease constant (default 1e-4).
	ArmijoC float64
	// Backtrack is the step-shrink factor in (0, 1) (default 0.5).
	Backtrack float64
	// MaxBacktracks bounds each line search (default 50).
	MaxBacktracks int
}

func (s Settings) withDefaults() Settings {
	if s.MaxIter <= 0 {
		s.MaxIter = 200
	}
	if s.GradTol <= 0 {
		s.GradTol = 1e-6
	}
	if s.FuncTol <= 0 {
		s.FuncTol = 1e-10
	}
	if s.InitialStep <= 0 {
		s.InitialStep = 1
	}
	if s.ArmijoC <= 0 {
		s.ArmijoC = 1e-4
	}
	if s.Backtrack <= 0 || s.Backtrack >= 1 {
		s.Backtrack = 0.5
	}
	if s.MaxBacktracks <= 0 {
		s.MaxBacktracks = 50
	}
	return s
}

// Status describes why a minimizer stopped.
type Status int

const (
	// GradientConverged means ‖∇f‖∞ fell below GradTol.
	GradientConverged Status = iota
	// FunctionConverged means the relative objective improvement fell
	// below FuncTol.
	FunctionConverged
	// IterationLimit means MaxIter was reached first.
	IterationLimit
	// LineSearchFailed means no step satisfying the Armijo condition
	// was found; the best iterate so far is returned.
	LineSearchFailed
)

// String renders the status for logs.
func (s Status) String() string {
	switch s {
	case GradientConverged:
		return "gradient converged"
	case FunctionConverged:
		return "function converged"
	case IterationLimit:
		return "iteration limit"
	case LineSearchFailed:
		return "line search failed"
	default:
		return "unknown"
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X          linalg.Vector
	F          float64
	GradNorm   float64
	Iterations int
	Status     Status
}

// ConjugateGradient minimizes p starting from x0 using nonlinear CG
// with the Polak–Ribière+ update (β = max(0, βPR), which subsumes
// steepest-descent restarts) and an Armijo backtracking line search.
// x0 is not modified.
func ConjugateGradient(p Problem, x0 linalg.Vector, s Settings) Result {
	s = s.withDefaults()
	n := len(x0)
	x := x0.Clone()
	g := make(linalg.Vector, n)
	gPrev := make(linalg.Vector, n)
	d := make(linalg.Vector, n)

	f := p.Eval(x)
	p.Grad(x, g)
	for i := range d {
		d[i] = -g[i]
	}

	res := Result{X: x, F: f, GradNorm: g.NormInf(), Status: IterationLimit}
	if res.GradNorm <= s.GradTol {
		res.Status = GradientConverged
		return res
	}

	step := s.InitialStep
	for iter := 1; iter <= s.MaxIter; iter++ {
		res.Iterations = iter
		// Ensure d is a descent direction; restart on failure.
		slope := g.Dot(d)
		if slope >= 0 {
			for i := range d {
				d[i] = -g[i]
			}
			slope = g.Dot(d)
		}

		fNew, xNew, ok := armijo(p, x, f, d, slope, step, s)
		if !ok {
			res.Status = LineSearchFailed
			return res
		}

		copy(gPrev, g)
		p.Grad(xNew, g)

		relImp := (f - fNew) / (math.Abs(f) + 1e-12)
		x, f = xNew, fNew
		res.X, res.F, res.GradNorm = x, f, g.NormInf()

		if res.GradNorm <= s.GradTol {
			res.Status = GradientConverged
			return res
		}
		if relImp >= 0 && relImp < s.FuncTol {
			res.Status = FunctionConverged
			return res
		}

		// Polak–Ribière+ direction update.
		var num, den float64
		for i := range g {
			num += g[i] * (g[i] - gPrev[i])
			den += gPrev[i] * gPrev[i]
		}
		beta := 0.0
		if den > 0 {
			beta = math.Max(0, num/den)
		}
		for i := range d {
			d[i] = -g[i] + beta*d[i]
		}
		step = s.InitialStep
	}
	return res
}

// GradientDescent minimizes p with steepest descent and the same
// Armijo line search. It exists for ablation comparisons against CG.
func GradientDescent(p Problem, x0 linalg.Vector, s Settings) Result {
	s = s.withDefaults()
	x := x0.Clone()
	g := make(linalg.Vector, len(x0))
	f := p.Eval(x)
	p.Grad(x, g)
	res := Result{X: x, F: f, GradNorm: g.NormInf(), Status: IterationLimit}
	if res.GradNorm <= s.GradTol {
		res.Status = GradientConverged
		return res
	}
	for iter := 1; iter <= s.MaxIter; iter++ {
		res.Iterations = iter
		d := g.Scale(-1)
		fNew, xNew, ok := armijo(p, x, f, d, g.Dot(d), s.InitialStep, s)
		if !ok {
			res.Status = LineSearchFailed
			return res
		}
		relImp := (f - fNew) / (math.Abs(f) + 1e-12)
		x, f = xNew, fNew
		p.Grad(x, g)
		res.X, res.F, res.GradNorm = x, f, g.NormInf()
		if res.GradNorm <= s.GradTol {
			res.Status = GradientConverged
			return res
		}
		if relImp >= 0 && relImp < s.FuncTol {
			res.Status = FunctionConverged
			return res
		}
	}
	return res
}

// armijo backtracks from step until f(x+t·d) ≤ f + c·t·slope, returning
// the accepted objective and point.
func armijo(p Problem, x linalg.Vector, f float64, d linalg.Vector, slope, step float64, s Settings) (float64, linalg.Vector, bool) {
	t := step
	xt := make(linalg.Vector, len(x))
	for k := 0; k < s.MaxBacktracks; k++ {
		for i := range x {
			xt[i] = x[i] + t*d[i]
		}
		ft := p.Eval(xt)
		// A trial value of NaN or ±Inf means the step left the
		// objective's domain; −Inf in particular would satisfy the
		// sufficient-decrease inequality and poison the iterate, so any
		// non-finite value rejects the step.
		if !math.IsNaN(ft) && !math.IsInf(ft, 0) && ft <= f+s.ArmijoC*t*slope {
			return ft, xt.Clone(), true
		}
		t *= s.Backtrack
	}
	return f, nil, false
}

// NumericalGradient writes the central-difference gradient of eval at
// x into g, using step h per coordinate. It is intended for testing
// hand-derived gradients.
func NumericalGradient(eval func(linalg.Vector) float64, x linalg.Vector, h float64, g linalg.Vector) {
	xt := x.Clone()
	for i := range x {
		orig := xt[i]
		xt[i] = orig + h
		fp := eval(xt)
		xt[i] = orig - h
		fm := eval(xt)
		xt[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
}

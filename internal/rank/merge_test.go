package rank

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestMergeTopKEquivalence is the merge-equivalence property the
// sharded selection path rests on: for any candidate set, any disjoint
// partition of it, and any k, merging the per-partition top-k lists
// yields exactly the single-node top-k — including on exact score ties
// and when k exceeds some (or every) partition's size.
func TestMergeTopKEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		scores := make(map[int]float64, n)
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = i
			// Quantized scores make exact ties common, so the id
			// tie-break is exercised on nearly every trial.
			scores[i] = float64(rng.Intn(6)) / 3
		}
		score := func(id int) float64 { return scores[id] }

		shards := 1 + rng.Intn(5)
		parts := make([][]int, shards)
		for _, id := range ids {
			s := rng.Intn(shards)
			parts[s] = append(parts[s], id)
		}

		// k ranges past n so the "k larger than every per-shard count"
		// regime is covered too.
		k := 1 + rng.Intn(n+10)

		single := TopKScored(ids, score, k)
		lists := make([][]Item, shards)
		for s, part := range parts {
			lists[s] = TopKScored(part, score, k)
		}
		merged := MergeTopK(lists, k)

		if !reflect.DeepEqual(single, merged) {
			t.Fatalf("trial %d (n=%d shards=%d k=%d): merge diverged\nsingle: %v\nmerged: %v",
				trial, n, shards, k, single, merged)
		}
	}
}

// TestMergeTopKDuplicatesKeepBestScore covers the overlap case the
// property test's disjoint partitions never hit: the same id appearing
// in two lists keeps its best score and appears once.
func TestMergeTopKDuplicatesKeepBestScore(t *testing.T) {
	merged := MergeTopK([][]Item{
		{{ID: 1, Score: 0.2}, {ID: 2, Score: 0.1}},
		{{ID: 1, Score: 0.9}, {ID: 3, Score: 0.5}},
	}, 3)
	want := []Item{{ID: 1, Score: 0.9}, {ID: 3, Score: 0.5}, {ID: 2, Score: 0.1}}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("got %v, want %v", merged, want)
	}
}

func TestMergeTopKEdgeCases(t *testing.T) {
	if got := MergeTopK(nil, 3); got != nil {
		t.Errorf("nil lists: got %v", got)
	}
	if got := MergeTopK([][]Item{{}, nil}, 3); got != nil {
		t.Errorf("empty lists: got %v", got)
	}
	if got := MergeTopK([][]Item{{{ID: 1, Score: 1}}}, 0); got != nil {
		t.Errorf("k=0: got %v", got)
	}
}

func TestIDs(t *testing.T) {
	if got := IDs(nil); got != nil {
		t.Errorf("nil items: got %v", got)
	}
	got := IDs([]Item{{ID: 4, Score: 2}, {ID: 1, Score: 1}})
	if !reflect.DeepEqual(got, []int{4, 1}) {
		t.Errorf("got %v", got)
	}
}

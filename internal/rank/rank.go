// Package rank provides the small ranking utilities shared by every
// crowd-selection algorithm: top-k selection over scored candidates
// (Eq. 1 of the paper) and the rank of a designated candidate, which
// the ACCU and TopK metrics of §7.2.2 are built on.
package rank

import (
	"sort"
)

// Item is a scored candidate.
type Item struct {
	ID    int
	Score float64
}

// TopK returns the k highest-scoring candidate ids, best first. Ties
// break toward the lower id so results are deterministic. k larger
// than the candidate set returns all candidates ranked.
func TopK(candidates []int, score func(id int) float64, k int) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	items := make([]Item, len(candidates))
	for i, id := range candidates {
		items[i] = Item{ID: id, Score: score(id)}
	}
	sortItems(items)
	if k > len(items) {
		k = len(items)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].ID
	}
	return out
}

// TopKScored is TopK keeping the scores: the k best candidates as
// Items, best first, under the same tie-break (score desc, id asc).
// Scored lists are what a scatter-gather coordinator needs — per-shard
// ranks alone cannot be merged, per-shard scores can.
func TopKScored(candidates []int, score func(id int) float64, k int) []Item {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	items := make([]Item, len(candidates))
	for i, id := range candidates {
		items[i] = Item{ID: id, Score: score(id)}
	}
	sortItems(items)
	if k > len(items) {
		k = len(items)
	}
	return items[:k:k]
}

// MergeTopK merges per-shard top-k lists into the global top-k under
// the same total order TopK uses (score desc, id asc). Duplicate ids
// across lists keep their best score. Provided every list is itself a
// top-k of a disjoint candidate subset under that order, the merge is
// exactly TopK over the union — the merge-equivalence property the
// sharded selection path relies on (DESIGN §11).
func MergeTopK(lists [][]Item, k int) []Item {
	if k <= 0 {
		return nil
	}
	var n int
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	best := make(map[int]float64, n)
	merged := make([]Item, 0, n)
	for _, l := range lists {
		for _, it := range l {
			if s, ok := best[it.ID]; ok {
				if it.Score > s {
					best[it.ID] = it.Score
				}
				continue
			}
			best[it.ID] = it.Score
			merged = append(merged, Item{ID: it.ID})
		}
	}
	for i := range merged {
		merged[i].Score = best[merged[i].ID]
	}
	sortItems(merged)
	if k > len(merged) {
		k = len(merged)
	}
	return merged[:k:k]
}

// IDs projects a scored list onto its ids, best first.
func IDs(items []Item) []int {
	if len(items) == 0 {
		return nil
	}
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// RankAll returns every candidate ranked best first.
func RankAll(candidates []int, score func(id int) float64) []int {
	return TopK(candidates, score, len(candidates))
}

// RankOf returns the 0-based rank of target among candidates under
// score (0 = best), and false when target is not a candidate.
func RankOf(candidates []int, score func(id int) float64, target int) (int, bool) {
	ranked := RankAll(candidates, score)
	for r, id := range ranked {
		if id == target {
			return r, true
		}
	}
	return 0, false
}

func sortItems(items []Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].ID < items[b].ID
	})
}

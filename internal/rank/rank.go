// Package rank provides the small ranking utilities shared by every
// crowd-selection algorithm: top-k selection over scored candidates
// (Eq. 1 of the paper) and the rank of a designated candidate, which
// the ACCU and TopK metrics of §7.2.2 are built on.
package rank

import (
	"sort"
)

// Item is a scored candidate.
type Item struct {
	ID    int
	Score float64
}

// TopK returns the k highest-scoring candidate ids, best first. Ties
// break toward the lower id so results are deterministic. k larger
// than the candidate set returns all candidates ranked.
func TopK(candidates []int, score func(id int) float64, k int) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	items := make([]Item, len(candidates))
	for i, id := range candidates {
		items[i] = Item{ID: id, Score: score(id)}
	}
	sortItems(items)
	if k > len(items) {
		k = len(items)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].ID
	}
	return out
}

// RankAll returns every candidate ranked best first.
func RankAll(candidates []int, score func(id int) float64) []int {
	return TopK(candidates, score, len(candidates))
}

// RankOf returns the 0-based rank of target among candidates under
// score (0 = best), and false when target is not a candidate.
func RankOf(candidates []int, score func(id int) float64, target int) (int, bool) {
	ranked := RankAll(candidates, score)
	for r, id := range ranked {
		if id == target {
			return r, true
		}
	}
	return 0, false
}

func sortItems(items []Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].ID < items[b].ID
	})
}

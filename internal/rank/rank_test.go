package rank

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func scoreOf(m map[int]float64) func(int) float64 {
	return func(id int) float64 { return m[id] }
}

func TestTopK(t *testing.T) {
	scores := map[int]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.7}
	got := TopK([]int{1, 2, 3, 4}, scoreOf(scores), 2)
	if !reflect.DeepEqual(got, []int{2, 4}) {
		t.Errorf("TopK = %v", got)
	}
}

func TestTopKOverAsk(t *testing.T) {
	got := TopK([]int{5, 6}, scoreOf(map[int]float64{5: 1, 6: 2}), 10)
	if !reflect.DeepEqual(got, []int{6, 5}) {
		t.Errorf("TopK = %v", got)
	}
}

func TestTopKEmptyAndZero(t *testing.T) {
	if got := TopK(nil, scoreOf(nil), 3); got != nil {
		t.Errorf("TopK(nil) = %v", got)
	}
	if got := TopK([]int{1}, scoreOf(nil), 0); got != nil {
		t.Errorf("TopK(k=0) = %v", got)
	}
}

func TestTopKTiesBreakByID(t *testing.T) {
	got := TopK([]int{9, 3, 7}, scoreOf(map[int]float64{9: 1, 3: 1, 7: 1}), 3)
	if !reflect.DeepEqual(got, []int{3, 7, 9}) {
		t.Errorf("tie order = %v", got)
	}
}

func TestRankOf(t *testing.T) {
	scores := map[int]float64{1: 0.5, 2: 0.9, 3: 0.1}
	if r, ok := RankOf([]int{1, 2, 3}, scoreOf(scores), 1); !ok || r != 1 {
		t.Errorf("RankOf(1) = %d, %v", r, ok)
	}
	if r, ok := RankOf([]int{1, 2, 3}, scoreOf(scores), 2); !ok || r != 0 {
		t.Errorf("RankOf(2) = %d, %v", r, ok)
	}
	if _, ok := RankOf([]int{1, 2}, scoreOf(scores), 99); ok {
		t.Error("missing target reported found")
	}
}

func TestRankAllIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		cands := make([]int, n)
		scores := make(map[int]float64, n)
		for i := range cands {
			cands[i] = rng.Intn(1000)
			scores[cands[i]] = rng.NormFloat64()
		}
		ranked := RankAll(cands, scoreOf(scores))
		if len(ranked) != n {
			t.Fatalf("RankAll length %d, want %d", len(ranked), n)
		}
		a, b := append([]int(nil), cands...), append([]int(nil), ranked...)
		sort.Ints(a)
		sort.Ints(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("RankAll is not a permutation of candidates")
		}
		for i := 1; i < n; i++ {
			if scores[ranked[i]] > scores[ranked[i-1]] {
				t.Fatal("RankAll not sorted by score")
			}
		}
	}
}

// Property: ranking is invariant under positive affine transforms of
// the score (relied on by selection-score semantics).
func TestRankInvariantUnderAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		cands := make([]int, n)
		scores := make(map[int]float64, n)
		for i := range cands {
			cands[i] = i
			scores[i] = rng.NormFloat64()
		}
		a, b := 0.5+rng.Float64()*3, rng.NormFloat64()*10
		r1 := RankAll(cands, scoreOf(scores))
		r2 := RankAll(cands, func(id int) float64 { return a*scores[id] + b })
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("affine transform changed ranking: %v vs %v", r1, r2)
		}
	}
}

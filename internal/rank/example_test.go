package rank_test

import (
	"fmt"

	"crowdselect/internal/rank"
)

func ExampleTopK() {
	skills := map[int]float64{3: 0.9, 7: 0.4, 9: 0.7}
	top := rank.TopK([]int{3, 7, 9}, func(id int) float64 { return skills[id] }, 2)
	fmt.Println(top)
	// Output: [3 9]
}

func ExampleRankOf() {
	skills := map[int]float64{1: 0.2, 2: 0.8, 3: 0.5}
	r, ok := rank.RankOf([]int{1, 2, 3}, func(id int) float64 { return skills[id] }, 3)
	fmt.Println(r, ok)
	// Output: 1 true
}

package plsa

import (
	"math"
	"testing"

	"crowdselect/internal/linalg"
	"crowdselect/internal/text"
)

func twoAspectCorpus() ([]text.Bag, int) {
	var docs []text.Bag
	for i := 0; i < 30; i++ {
		docs = append(docs, text.BagFromCounts(map[int]float64{0: 3, 1: 2, 2: 2, 3: 1}))
		docs = append(docs, text.BagFromCounts(map[int]float64{5: 3, 6: 2, 7: 2, 8: 1}))
	}
	return docs, 10
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(4).Validate(); err != nil {
		t.Error(err)
	}
	bad := NewConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	bad = NewConfig(2)
	bad.Smoothing = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative smoothing accepted")
	}
}

func TestTrainInputValidation(t *testing.T) {
	cfg := NewConfig(2)
	if _, _, err := Train(nil, 10, cfg); err == nil {
		t.Error("empty corpus accepted")
	}
	bad := []text.Bag{text.BagFromCounts(map[int]float64{99: 1})}
	if _, _, err := Train(bad, 10, cfg); err == nil {
		t.Error("out-of-vocabulary term accepted")
	}
}

func TestTrainSeparatesAspects(t *testing.T) {
	docs, v := twoAspectCorpus()
	cfg := NewConfig(2)
	cfg.Seed = 4
	m, pzd, err := Train(docs, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass00 := blockMass(m.PW.Row(0), 0, 5)
	mass01 := blockMass(m.PW.Row(1), 0, 5)
	if !(mass00 > 0.9 && mass01 < 0.1) && !(mass01 > 0.9 && mass00 < 0.1) {
		t.Errorf("aspects not separated: block-A mass %.3f / %.3f", mass00, mass01)
	}
	for d, pz := range pzd {
		if math.Abs(pz.Sum()-1) > 1e-9 {
			t.Fatalf("p(z|d) %d sums to %v", d, pz.Sum())
		}
		if pz.Max() < 0.9 {
			t.Errorf("doc %d not concentrated: %v", d, pz)
		}
	}
	for kk := 0; kk < m.K; kk++ {
		if s := m.PW.Row(kk).Sum(); math.Abs(s-1) > 1e-9 {
			t.Errorf("PW row %d sums to %v", kk, s)
		}
	}
}

func TestLogLikelihoodImprovesWithTraining(t *testing.T) {
	docs, v := twoAspectCorpus()
	short := NewConfig(2)
	short.Iterations = 1
	long := NewConfig(2)
	long.Iterations = 50
	m1, p1, err := Train(docs, v, short)
	if err != nil {
		t.Fatal(err)
	}
	m2, p2, err := Train(docs, v, long)
	if err != nil {
		t.Fatal(err)
	}
	if ll1, ll2 := m1.LogLikelihood(docs, p1), m2.LogLikelihood(docs, p2); ll2 < ll1 {
		t.Errorf("training reduced log likelihood: %v -> %v", ll1, ll2)
	}
}

func TestInferMatchesTrainingAspects(t *testing.T) {
	docs, v := twoAspectCorpus()
	cfg := NewConfig(2)
	m, pzd, err := Train(docs, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainAspect := pzd[0].ArgMax()
	got := m.Infer(text.BagFromCounts(map[int]float64{0: 2, 1: 2}))
	if got.ArgMax() != trainAspect {
		t.Errorf("inferred aspect %d, want %d (%v)", got.ArgMax(), trainAspect, got)
	}
}

func TestInferUnknownTermsUniform(t *testing.T) {
	docs, v := twoAspectCorpus()
	m, _, err := Train(docs, v, NewConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Infer(text.BagFromCounts(map[int]float64{999: 2}))
	if !got.Equal(linalg.ConstVector(2, 0.5), 1e-9) {
		t.Errorf("unknown-term inference = %v, want uniform", got)
	}
}

func TestTrainDeterministic(t *testing.T) {
	docs, v := twoAspectCorpus()
	cfg := NewConfig(3)
	m1, _, err := Train(docs, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(docs, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.PW.Equal(m2.PW, 0) {
		t.Error("PW differs across identical runs")
	}
}

func blockMass(row linalg.Vector, lo, hi int) float64 {
	var s float64
	for v := lo; v < hi; v++ {
		s += row[v]
	}
	return s
}

// Package plsa implements Probabilistic Latent Semantic Analysis
// (Hofmann, SIGIR 1999) trained with EM. It is the topic-model
// substrate of the DRM baseline (§7.2.1 of the paper, after Xu et al.,
// SIGIR 2012), which estimates worker skills and task categories with
// PLSA.
package plsa

import (
	"fmt"
	"math"

	"crowdselect/internal/linalg"
	"crowdselect/internal/randx"
	"crowdselect/internal/text"
)

// Config controls PLSA training.
type Config struct {
	// K is the number of latent aspects.
	K int
	// Iterations is the number of EM sweeps; FoldIterations is used by
	// Infer on new documents.
	Iterations, FoldIterations int
	// Smoothing is added to every count in the M-step to avoid zeros.
	Smoothing float64
	// Seed randomizes the initialization.
	Seed int64
}

// NewConfig returns sensible defaults for K aspects.
func NewConfig(k int) Config {
	return Config{K: k, Iterations: 60, FoldIterations: 30, Smoothing: 1e-3, Seed: 1}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("plsa: K = %d", c.K)
	case c.Iterations < 1 || c.FoldIterations < 1:
		return fmt.Errorf("plsa: iteration counts must be positive")
	case c.Smoothing < 0:
		return fmt.Errorf("plsa: Smoothing = %g", c.Smoothing)
	}
	return nil
}

// Model is a trained PLSA model: the aspect-word distributions.
type Model struct {
	K, V int
	cfg  Config
	// PW is the K×V matrix of p(w|z) (rows sum to 1).
	PW *linalg.Matrix
}

// Train runs EM over the documents and returns the model and the
// per-document aspect distributions p(z|d).
func Train(docs []text.Bag, vocabSize int, cfg Config) (*Model, []linalg.Vector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if vocabSize < 1 {
		return nil, nil, fmt.Errorf("plsa: vocabSize = %d", vocabSize)
	}
	k := cfg.K
	var nTokens float64
	for d, bag := range docs {
		for _, v := range bag.IDs {
			if v < 0 || v >= vocabSize {
				return nil, nil, fmt.Errorf("plsa: doc %d references term %d of %d", d, v, vocabSize)
			}
		}
		nTokens += bag.Total()
	}
	if nTokens == 0 {
		return nil, nil, fmt.Errorf("plsa: no tokens to train on")
	}

	rng := randx.New(cfg.Seed)
	pw := linalg.NewMatrix(k, vocabSize)
	for kk := 0; kk < k; kk++ {
		row := pw.Row(kk)
		var sum float64
		for v := 0; v < vocabSize; v++ {
			row[v] = 0.5 + rng.Float64()
			sum += row[v]
		}
		row.ScaleInPlace(1 / sum)
	}
	pzd := make([]linalg.Vector, len(docs))
	for d := range docs {
		pzd[d] = rng.SymmetricDirichlet(k, 1)
	}

	post := make(linalg.Vector, k)
	for it := 0; it < cfg.Iterations; it++ {
		nextPW := linalg.NewMatrix(k, vocabSize)
		for d, bag := range docs {
			nextPZ := linalg.NewVector(k)
			for p, v := range bag.IDs {
				cnt := bag.Counts[p]
				// E-step: p(z|d,w) ∝ p(z|d)·p(w|z).
				var sum float64
				for kk := 0; kk < k; kk++ {
					post[kk] = pzd[d][kk] * pw.At(kk, v)
					sum += post[kk]
				}
				if sum <= 0 {
					continue
				}
				for kk := 0; kk < k; kk++ {
					r := cnt * post[kk] / sum
					nextPW.AddAt(kk, v, r)
					nextPZ[kk] += r
				}
			}
			// M-step for p(z|d).
			total := nextPZ.Sum() + float64(k)*cfg.Smoothing
			for kk := 0; kk < k; kk++ {
				pzd[d][kk] = (nextPZ[kk] + cfg.Smoothing) / total
			}
		}
		// M-step for p(w|z).
		for kk := 0; kk < k; kk++ {
			row := nextPW.Row(kk)
			var sum float64
			for v := 0; v < vocabSize; v++ {
				row[v] += cfg.Smoothing
				sum += row[v]
			}
			row.ScaleInPlace(1 / sum)
		}
		pw = nextPW
	}
	return &Model{K: k, V: vocabSize, cfg: cfg, PW: pw}, pzd, nil
}

// Infer folds a new document in by EM over p(z|d) with p(w|z) fixed
// and returns its aspect distribution. Unknown terms are skipped; a
// document with no known terms returns the uniform distribution.
func (m *Model) Infer(doc text.Bag) linalg.Vector {
	k := m.K
	pz := linalg.ConstVector(k, 1/float64(k))
	ids := make([]int, 0, len(doc.IDs))
	counts := make([]float64, 0, len(doc.IDs))
	for p, v := range doc.IDs {
		if v >= 0 && v < m.V {
			ids = append(ids, v)
			counts = append(counts, doc.Counts[p])
		}
	}
	if len(ids) == 0 {
		return pz
	}
	post := make(linalg.Vector, k)
	for it := 0; it < m.cfg.FoldIterations; it++ {
		next := linalg.NewVector(k)
		for p, v := range ids {
			var sum float64
			for kk := 0; kk < k; kk++ {
				post[kk] = pz[kk] * m.PW.At(kk, v)
				sum += post[kk]
			}
			if sum <= 0 {
				continue
			}
			for kk := 0; kk < k; kk++ {
				next[kk] += counts[p] * post[kk] / sum
			}
		}
		total := next.Sum() + float64(k)*m.cfg.Smoothing
		for kk := 0; kk < k; kk++ {
			pz[kk] = (next[kk] + m.cfg.Smoothing) / total
		}
	}
	return pz
}

// LogLikelihood returns the log likelihood of the documents under the
// model with the given per-document aspect distributions. Training
// increases it; the tests assert that.
func (m *Model) LogLikelihood(docs []text.Bag, pzd []linalg.Vector) float64 {
	var ll float64
	for d, bag := range docs {
		for p, v := range bag.IDs {
			if v < 0 || v >= m.V {
				continue
			}
			var pwd float64
			for kk := 0; kk < m.K; kk++ {
				pwd += pzd[d][kk] * m.PW.At(kk, v)
			}
			if pwd > 0 {
				ll += bag.Counts[p] * math.Log(pwd)
			}
		}
	}
	return ll
}

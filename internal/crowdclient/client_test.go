package crowdclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testClient retries without real sleeping so tests stay fast.
func testClient(baseURL string) *Client {
	return New(baseURL, Options{
		Timeout: 5 * time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
}

// TestRetryFlaky5xx: a GET that hits a server failing its first
// responses with 500s must succeed once the server recovers, within
// the retry budget.
func TestRetryFlaky5xx(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"workers": 3}`)
	}))
	defer srv.Close()

	st, err := testClient(srv.URL).Stats(context.Background())
	if err != nil {
		t.Fatalf("GET through flaky server: %v", err)
	}
	if got := atomic.LoadInt32(&hits); got != 3 {
		t.Errorf("server hit %d times, want 3 (2 failures + success)", got)
	}
	if st.Workers != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRetryBudgetExhausted: a persistently failing GET returns the
// last error after the bounded retries, not an infinite loop.
func TestRetryBudgetExhausted(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	_, err := testClient(srv.URL).Stats(context.Background())
	if err == nil {
		t.Fatal("persistent 500s reported success")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Errorf("error %q does not surface the final status", err)
	}
	if got := atomic.LoadInt32(&hits); got != 4 {
		t.Errorf("server hit %d times, want 4 (1 + 3 retries)", got)
	}
}

// TestPostNotRetriedOn5xx: mutations must not be replayed when the
// server answered — only dial failures are safe to retry.
func TestPostNotRetriedOn5xx(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	if _, err := testClient(srv.URL).SubmitTask(context.Background(), "q", 1); err == nil {
		t.Fatal("500 on POST reported success")
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Errorf("POST sent %d times, want exactly 1", got)
	}
}

// TestRetryConnectionRefused: dial errors are retried for POSTs too —
// the request never reached a server. The server comes up between
// attempts.
func TestRetryConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: first attempts get connection refused

	started := make(chan *httptest.Server, 1)
	attempt := 0
	cli := New("http://"+addr, Options{
		Timeout: 5 * time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
		Sleep: func(time.Duration) {
			attempt++
			if attempt == 2 {
				// Bring the server up on the probed address before the
				// third attempt.
				l, err := net.Listen("tcp", addr)
				if err != nil {
					t.Errorf("relisten: %v", err)
					return
				}
				s := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					w.WriteHeader(http.StatusNoContent)
				}))
				s.Listener.Close()
				s.Listener = l
				s.Start()
				started <- s
			}
		},
	})
	if err := cli.SetPresence(context.Background(), 0, false); err != nil {
		t.Fatalf("POST after server came up: %v", err)
	}
	select {
	case s := <-started:
		s.Close()
	default:
		t.Fatal("server never started; POST succeeded against nothing")
	}
}

// TestAPIErrorEnvelope: a non-2xx response with the server's envelope
// decodes into a typed *APIError carrying the stable code.
func TestAPIErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":{"code":"not_found","message":"task 7 does not exist"}}`)
	}))
	defer srv.Close()

	_, err := testClient(srv.URL).GetTask(context.Background(), 7)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("APIError = %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "task 7 does not exist") {
		t.Errorf("Error() = %q", apiErr.Error())
	}
	// Non-envelope bodies still produce a usable error.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text", http.StatusBadRequest)
	}))
	defer srv2.Close()
	_, err = testClient(srv2.URL).SubmitTask(context.Background(), "x", 1)
	if !errors.As(err, &apiErr) || apiErr.Code != "" || !strings.Contains(apiErr.Message, "plain text") {
		t.Errorf("plain error = %v", err)
	}
}

// TestContextCancelStopsRetries: a cancelled context ends the retry
// loop instead of burning the whole budget.
func TestContextCancelStopsRetries(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cli := New(srv.URL, Options{
		Timeout: 5 * time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) { cancel() },
	})
	if _, err := cli.Stats(ctx); err == nil {
		t.Fatal("cancelled request reported success")
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Errorf("server hit %d times after cancel, want 1", got)
	}
}

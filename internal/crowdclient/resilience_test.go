package crowdclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowdselect/internal/crowddb"
)

// deadAddr returns an address nothing listens on, so dials fail fast.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBreakerOpensAndFastFails: consecutive transport failures open
// the breaker; further calls fail fast with ErrCircuitOpen without
// touching the network.
func TestBreakerOpensAndFastFails(t *testing.T) {
	addr := deadAddr(t)
	cli := New("http://"+addr, Options{
		Retries:          -1, // one attempt per call: failures count cleanly
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		Timeout:          2 * time.Second,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := cli.Stats(ctx); err == nil || errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d = %v, want a transport error", i, err)
		}
	}
	st := cli.ResilienceStats()
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("after threshold: state %q, opens %d; want open, 1", st.BreakerState, st.BreakerOpens)
	}
	if _, err := cli.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call while open = %v, want ErrCircuitOpen", err)
	}
	if st := cli.ResilienceStats(); st.BreakerFastFails == 0 {
		t.Error("fast-fail not counted")
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown one trial request is
// let through; a failing trial re-opens the breaker, a succeeding one
// closes it.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	addr := deadAddr(t)
	var nowNanos atomic.Int64
	clock := func() time.Time { return time.Unix(0, nowNanos.Load()) }
	cli := New("http://"+addr, Options{
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Clock:            clock,
		Timeout:          2 * time.Second,
	})
	ctx := context.Background()
	cli.Stats(ctx)
	cli.Stats(ctx)
	if st := cli.ResilienceStats(); st.BreakerState != "open" {
		t.Fatalf("state = %q, want open", st.BreakerState)
	}
	// Cooldown elapses but the server is still down: the half-open
	// trial fails and re-opens the breaker.
	nowNanos.Add(int64(2 * time.Second))
	if _, err := cli.Stats(ctx); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open trial = %v, want a transport error", err)
	}
	st := cli.ResilienceStats()
	if st.BreakerState != "open" || st.BreakerOpens != 2 {
		t.Fatalf("after failed trial: state %q, opens %d; want open, 2", st.BreakerState, st.BreakerOpens)
	}
	// The server comes back on the same address; the next trial closes
	// the breaker.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"workers": 1}`)
	}))
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	defer srv.Close()

	nowNanos.Add(int64(2 * time.Second))
	if _, err := cli.Stats(ctx); err != nil {
		t.Fatalf("trial against recovered server: %v", err)
	}
	if st := cli.ResilienceStats(); st.BreakerState != "closed" {
		t.Fatalf("state after recovery = %q, want closed", st.BreakerState)
	}
}

// TestBreakerIgnoresHTTPErrors: a server answering 503s is alive —
// HTTP responses of any status must never open the breaker, or
// degraded-mode reads would be cut off exactly when they matter.
func TestBreakerIgnoresHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "degraded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	cli := New(srv.URL, Options{Retries: -1, BreakerThreshold: 2})
	for i := 0; i < 5; i++ {
		var apiErr *APIError
		if _, err := cli.Stats(context.Background()); !errors.As(err, &apiErr) {
			t.Fatalf("call %d = %v, want *APIError", i, err)
		}
	}
	if st := cli.ResilienceStats(); st.BreakerState != "closed" || st.BreakerOpens != 0 {
		t.Fatalf("breaker after 5xx storm: state %q, opens %d; want closed, 0", st.BreakerState, st.BreakerOpens)
	}
}

// TestRetryBudgetBoundsRetryStorm: the client-wide token bucket cuts
// retries off once spent, turning calls into first-attempt-only.
func TestRetryBudgetBoundsRetryStorm(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	cli := New(srv.URL, Options{
		Retries:     3,
		Backoff:     time.Millisecond,
		Sleep:       func(time.Duration) {},
		RetryBudget: 2,
	})
	// First call: 1 attempt + 2 budgeted retries, then the bucket runs
	// dry mid-loop.
	_, err := cli.Stats(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("first call = %v, want retry budget exhausted", err)
	}
	if got := atomic.LoadInt32(&hits); got != 3 {
		t.Fatalf("server hit %d times, want 3 (1 + 2 budgeted retries)", got)
	}
	// Second call: no tokens left, so exactly one attempt.
	_, err = cli.Stats(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("second call = %v, want retry budget exhausted", err)
	}
	if got := atomic.LoadInt32(&hits); got != 4 {
		t.Fatalf("server hit %d times, want 4 (budget empty: first attempt only)", got)
	}
	if st := cli.ResilienceStats(); st.RetryTokens != 0 {
		t.Errorf("tokens = %v, want 0", st.RetryTokens)
	}
}

// TestRetryBudgetRefundsOnSuccess: successful requests refill the
// bucket so a transient blip does not permanently disable retries.
func TestRetryBudgetRefundsOnSuccess(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"workers": 3}`)
	}))
	defer srv.Close()
	cli := New(srv.URL, Options{
		Retries:     3,
		Backoff:     time.Millisecond,
		Sleep:       func(time.Duration) {},
		RetryBudget: 10,
	})
	if _, err := cli.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two retries spent, one refunded by the success.
	if st := cli.ResilienceStats(); st.RetryTokens != 9 {
		t.Errorf("tokens = %v, want 9", st.RetryTokens)
	}
}

// TestHedgingRacesIdempotentRequests: a slow first response triggers a
// hedge whose faster answer wins; mutations are never hedged.
func TestHedgingRacesIdempotentRequests(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) == 1 {
			time.Sleep(300 * time.Millisecond) // only the first request is slow
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost {
			fmt.Fprintln(w, `{"task_id": 1, "workers": [0], "model": "TDPM"}`)
			return
		}
		fmt.Fprintln(w, `{"workers": 2}`)
	}))
	defer srv.Close()
	cli := New(srv.URL, Options{HedgeDelay: 20 * time.Millisecond})

	start := time.Now()
	st, err := cli.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged GET took %v; the hedge should have won well under the slow path", elapsed)
	}
	rs := cli.ResilienceStats()
	if rs.HedgesLaunched != 1 || rs.HedgeWins != 1 {
		t.Errorf("hedges = %d launched, %d wins; want 1, 1", rs.HedgesLaunched, rs.HedgeWins)
	}

	// A mutation through the same client is sent exactly once, however
	// slow the server is: hedging a POST /tasks could double-submit.
	atomic.StoreInt32(&hits, 0) // handler fast from here on
	before := cli.ResilienceStats().HedgesLaunched
	if _, err := cli.SubmitTask(context.Background(), "not hedged", 1); err != nil {
		t.Fatal(err)
	}
	if after := cli.ResilienceStats().HedgesLaunched; after != before {
		t.Error("mutation was hedged")
	}
}

// TestIdempotentClassification: only GETs and the pure selections POST
// are replay-safe.
func TestIdempotentClassification(t *testing.T) {
	cases := []struct {
		method, url string
		want        bool
	}{
		{http.MethodGet, "http://x/api/v1/stats", true},
		{http.MethodPost, "http://x/api/v1/selections", true},
		{http.MethodPost, "http://x/api/v1/tasks", false},
		{http.MethodPost, "http://x/api/v1/query", false},
		{http.MethodPost, "http://x/api/v1/tasks/1/feedback", false},
	}
	for _, c := range cases {
		if got := idempotent(c.method, c.url); got != c.want {
			t.Errorf("idempotent(%s %s) = %v, want %v", c.method, c.url, got, c.want)
		}
	}
}

// TestSelectionsTypedAndRetried: the Selections method decodes the
// server payload, and — being idempotent — retries transport failures
// that a mutation would not.
func TestSelectionsTypedAndRetried(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/selections" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		if atomic.AddInt32(&hits, 1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"results":[{"workers":[2,0]}],"model":"TDPM"}`)
	}))
	defer srv.Close()

	sel, err := testClient(srv.URL).Selections(context.Background(),
		[]crowddb.SubmitRequest{{Text: "rank me", K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Results) != 1 || len(sel.Results[0].Workers) != 2 || sel.Model != "TDPM" {
		t.Fatalf("selections = %+v", sel)
	}
	if got := atomic.LoadInt32(&hits); got != 2 {
		t.Errorf("server hit %d times, want 2 (5xx retried: selections are idempotent)", got)
	}
}

// TestSeededJitterIsDeterministic: two clients with the same seed
// produce identical backoff sequences; the client owns its randomness
// rather than the global math/rand state.
func TestSeededJitterIsDeterministic(t *testing.T) {
	a := New("http://x", Options{Seed: 42})
	b := New("http://x", Options{Seed: 42})
	c := New("http://x", Options{Seed: 7})
	var sameAll, diffAny bool
	sameAll = true
	for i := 1; i <= 8; i++ {
		av, bv, cv := a.backoffFor(i), b.backoffFor(i), c.backoffFor(i)
		if av != bv {
			sameAll = false
		}
		if av != cv {
			diffAny = true
		}
	}
	if !sameAll {
		t.Error("identical seeds diverged")
	}
	if !diffAny {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

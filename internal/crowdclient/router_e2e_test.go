package crowdclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowddb"
)

// fleetFixture is a single-node reference service plus an N-shard
// fleet built from the same dataset and trained model, each node with
// its own copy of the model so posterior updates stay independent.
type fleetFixture struct {
	dataset *corpus.Dataset
	single  *httptest.Server
	shards  []*httptest.Server
}

func trainedModel(t *testing.T) (*corpus.Dataset, *core.Model) {
	t.Helper()
	p := corpus.Quora().Scaled(0.03)
	p.Seed = 17
	d := corpus.MustGenerate(p)
	var tasks []core.ResolvedTask
	for _, task := range d.Tasks {
		rt := core.ResolvedTask{Bag: task.Bag(d.Vocab)}
		for _, r := range task.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		tasks = append(tasks, rt)
	}
	cfg := core.NewConfig(5)
	cfg.MaxIter = 5
	m, _, err := core.Train(tasks, len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

// cloneModel round-trips the model through its serialization so every
// node mutates its own posteriors.
func cloneModel(t *testing.T, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := core.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

func newNode(t *testing.T, d *corpus.Dataset, m *core.Model, sp crowddb.ShardSpec) (*crowddb.Server, *httptest.Server) {
	return newNodeWith(t, d, m, sp, nil)
}

// newNodeWith is newNode with an optional handler middleware, so a
// test can inject faults between the Router and a shard.
func newNodeWith(t *testing.T, d *corpus.Dataset, m *core.Model, sp crowddb.ShardSpec, wrap func(http.Handler) http.Handler) (*crowddb.Server, *httptest.Server) {
	t.Helper()
	store := crowddb.NewStore()
	for i := range d.Workers {
		if _, err := store.AddWorker(i, fmt.Sprintf("worker-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := crowddb.NewManager(store, d.Vocab, core.NewConcurrentModel(cloneModel(t, m)), 3)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetShard(sp)
	srv := crowddb.NewServer(mgr)
	var h http.Handler = srv
	if wrap != nil {
		h = wrap(h)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return srv, hs
}

func newFleet(t *testing.T, count int) *fleetFixture {
	return newFleetWrapped(t, count, nil)
}

func newFleetWrapped(t *testing.T, count int, wrap func(http.Handler) http.Handler) *fleetFixture {
	t.Helper()
	d, m := trainedModel(t)
	f := &fleetFixture{dataset: d}
	_, f.single = newNode(t, d, m, crowddb.ShardSpec{})

	servers := make([]*crowddb.Server, count)
	doc := crowddb.Topology{Epoch: 1, Count: count}
	for i := 0; i < count; i++ {
		srv, hs := newNodeWith(t, d, m, crowddb.ShardSpec{Index: i, Count: count}, wrap)
		servers[i] = srv
		f.shards = append(f.shards, hs)
		doc.Shards = append(doc.Shards, crowddb.ShardAddr{Index: i, URL: hs.URL})
	}
	for _, srv := range servers {
		if err := srv.SetTopology(doc); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *fleetFixture) router(t *testing.T) *Router {
	t.Helper()
	r, err := NewRouter(context.Background(), []string{f.shards[0].URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (f *fleetFixture) texts(n int) []string {
	out := make([]string, 0, n)
	for _, task := range f.dataset.Tasks {
		if len(out) == n {
			break
		}
		out = append(out, strings.Join(task.Tokens, " "))
	}
	return out
}

// TestRouterSelectionsMatchSingleNode is the tentpole acceptance
// property end to end: a scatter-gathered selection over an N-shard
// fleet is bitwise-identical to the same selection on one unsharded
// node holding the full roster.
func TestRouterSelectionsMatchSingleNode(t *testing.T) {
	for _, count := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", count), func(t *testing.T) {
			f := newFleet(t, count)
			r := f.router(t)
			ctx := context.Background()
			single := New(f.single.URL, Options{})

			var reqs []crowddb.SubmitRequest
			for _, text := range f.texts(6) {
				reqs = append(reqs, crowddb.SubmitRequest{Text: text, K: 5})
			}
			want, err := single.Selections(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Selections(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if !reflect.DeepEqual(got.Results[i].Workers, want.Results[i].Workers) {
					t.Errorf("task %d: fleet selected %v, single node %v",
						i, got.Results[i].Workers, want.Results[i].Workers)
				}
			}
		})
	}
}

// TestRouterFeedbackKeepsFleetEquivalent drives the full write path —
// submit, answers, feedback with cross-shard posterior forwarding —
// identically against the fleet and the single node, then checks that
// selections still agree. If any shard folded a posterior twice,
// missed one, or used the wrong score, the rankings would diverge.
func TestRouterFeedbackKeepsFleetEquivalent(t *testing.T) {
	f := newFleet(t, 2)
	r := f.router(t)
	ctx := context.Background()
	single := New(f.single.URL, Options{})

	for round, text := range f.texts(4) {
		sub, err := r.SubmitTask(ctx, text, 4)
		if err != nil {
			t.Fatal(err)
		}
		ssub, err := single.SubmitTask(ctx, text, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sub.Workers, ssub.Workers) {
			t.Fatalf("round %d: fleet assigned %v, single node %v", round, sub.Workers, ssub.Workers)
		}
		scores := make(map[int]float64)
		for j, w := range sub.Workers {
			if err := r.Answer(ctx, sub.TaskID, w, "fleet answer"); err != nil {
				t.Fatal(err)
			}
			if err := single.Answer(ctx, ssub.TaskID, w, "fleet answer"); err != nil {
				t.Fatal(err)
			}
			if j < 3 { // leave one answer unscored: it must fold as 0 on both sides
				scores[w] = float64(((round+j)%5)+1) / 5
			}
		}
		rec, err := r.Feedback(ctx, sub.TaskID, scores)
		if err != nil {
			t.Fatalf("round %d: fleet feedback: %v", round, err)
		}
		if rec.Status != crowddb.TaskResolved {
			t.Fatalf("round %d: fleet task not resolved: %v", round, rec.Status)
		}
		if _, err := single.Feedback(ctx, ssub.TaskID, scores); err != nil {
			t.Fatalf("round %d: single feedback: %v", round, err)
		}
	}

	var reqs []crowddb.SubmitRequest
	for _, text := range f.texts(6) {
		reqs = append(reqs, crowddb.SubmitRequest{Text: text, K: 6})
	}
	want, err := single.Selections(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Selections(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if !reflect.DeepEqual(got.Results[i].Workers, want.Results[i].Workers) {
			t.Errorf("post-feedback task %d: fleet %v, single %v",
				i, got.Results[i].Workers, want.Results[i].Workers)
		}
	}
}

// feedbackOutage fails the next N skills:feedback posts fleet-wide —
// the injected fault for the forward-leg retry drill.
type feedbackOutage struct{ remaining atomic.Int32 }

func (o *feedbackOutage) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/api/v1/skills:feedback") && o.remaining.Add(-1) >= 0 {
			http.Error(w, `{"error":{"code":"internal","message":"injected forward outage"}}`, http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// TestRouterFeedbackRetriesForwardLegs is the partial-failure drill
// for cross-shard posterior forwarding: the home-shard resolve
// commits, the forward leg to the foreign owner dies, and the caller
// simply retries Feedback. The retry must find the task already
// resolved, re-forward from the stored resolution, and the owner-side
// dedupe must keep every posterior folded exactly once — verified by
// bitwise selection equivalence against a single node that saw the
// same traffic with no faults.
func TestRouterFeedbackRetriesForwardLegs(t *testing.T) {
	outage := &feedbackOutage{}
	f := newFleetWrapped(t, 2, outage.wrap)
	r := f.router(t)
	single := New(f.single.URL, Options{})
	ctx := context.Background()

	// Walk the deterministic task stream until a submission has at
	// least one foreign answerer (owned by the non-home shard); tasks
	// without one resolve normally on both sides to keep parity.
	var (
		drillTask, singleTask int
		drillScores           map[int]float64
	)
	for round, text := range f.texts(8) {
		sub, err := r.SubmitTask(ctx, text, 4)
		if err != nil {
			t.Fatal(err)
		}
		ssub, err := single.SubmitTask(ctx, text, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sub.Workers, ssub.Workers) {
			t.Fatalf("round %d: fleet assigned %v, single %v", round, sub.Workers, ssub.Workers)
		}
		scores := make(map[int]float64, len(sub.Workers))
		for j, w := range sub.Workers {
			if err := r.Answer(ctx, sub.TaskID, w, "drill answer"); err != nil {
				t.Fatal(err)
			}
			if err := single.Answer(ctx, ssub.TaskID, w, "drill answer"); err != nil {
				t.Fatal(err)
			}
			scores[w] = float64(((round+j)%5)+1) / 5
		}
		home := crowddb.ShardOfTask(sub.TaskID, 2)
		foreign := 0
		for _, w := range sub.Workers {
			if crowddb.ShardOfWorker(w, 2) != home {
				foreign++
			}
		}
		if foreign > 0 && drillScores == nil {
			drillTask, singleTask, drillScores = sub.TaskID, ssub.TaskID, scores
			continue // resolved below, under the outage
		}
		if _, err := r.Feedback(ctx, sub.TaskID, scores); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Feedback(ctx, ssub.TaskID, scores); err != nil {
			t.Fatal(err)
		}
	}
	if drillScores == nil {
		t.Fatal("no submission selected a foreign answerer; fixture too small for the drill")
	}

	// One forward leg dies (two shards: exactly one foreign owner).
	// The resolve itself is durable, so Feedback must report the leg.
	outage.remaining.Store(1)
	if _, err := r.Feedback(ctx, drillTask, drillScores); err == nil {
		t.Fatal("forward-leg failure not reported")
	}

	// A bare retry of the same call drains the missing leg: the home
	// shard answers from the stored resolution, the owner folds once.
	rec, err := r.Feedback(ctx, drillTask, drillScores)
	if err != nil {
		t.Fatalf("Feedback retry after forward failure: %v", err)
	}
	if rec.Status != crowddb.TaskResolved {
		t.Fatalf("retried task not resolved: %v", rec.Status)
	}
	// Further retries are acknowledged no-ops (owner-side dedupe).
	if _, err := r.Feedback(ctx, drillTask, drillScores); err != nil {
		t.Fatalf("idempotent re-retry: %v", err)
	}
	if _, err := single.Feedback(ctx, singleTask, drillScores); err != nil {
		t.Fatal(err)
	}

	// Exactly-once proof: had any owner folded the forwarded scores
	// zero or two times, the fleet's rankings would diverge from the
	// single node's.
	var reqs []crowddb.SubmitRequest
	for _, text := range f.texts(6) {
		reqs = append(reqs, crowddb.SubmitRequest{Text: text, K: 6})
	}
	want, err := single.Selections(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Selections(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if !reflect.DeepEqual(got.Results[i].Workers, want.Results[i].Workers) {
			t.Errorf("post-drill selection %d: fleet %v, single %v",
				i, got.Results[i].Workers, want.Results[i].Workers)
		}
	}
}

// TestWrongShardRefusalCarriesOwnerHint checks the 421 contract: a
// shard refuses presence flips for workers it does not own, names the
// owner in the typed error, and the Router lands the same call on the
// right shard.
func TestWrongShardRefusalCarriesOwnerHint(t *testing.T) {
	f := newFleet(t, 2)
	r := f.router(t)
	ctx := context.Background()

	// Find a worker owned by shard 1 and aim the call at shard 0.
	victim := -1
	for id := 0; id < len(f.dataset.Workers); id++ {
		if crowddb.ShardOfWorker(id, 2) == 1 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker owned by shard 1")
	}
	wrong := New(f.shards[0].URL, Options{})
	err := wrong.SetPresence(ctx, victim, false)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	if ae.StatusCode != 421 || ae.Code != "wrong_shard" {
		t.Fatalf("want 421 wrong_shard, got %d %s", ae.StatusCode, ae.Code)
	}
	if ae.ShardOwner != 1 {
		t.Errorf("owner hint = %d, want 1", ae.ShardOwner)
	}
	if ae.ShardOwnerURL != f.shards[1].URL {
		t.Errorf("owner URL = %q, want %q", ae.ShardOwnerURL, f.shards[1].URL)
	}

	// The Router routes by ownership and succeeds.
	if err := r.SetPresence(ctx, victim, false); err != nil {
		t.Fatalf("router presence: %v", err)
	}
	w, err := r.GetWorker(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if w.Online {
		t.Error("presence flip did not land on the owner shard")
	}
}

// TestRouterSelectionsDegradeToSurvivors kills one shard outright and
// checks that selections keep answering from the surviving shard's
// candidates instead of failing.
func TestRouterSelectionsDegradeToSurvivors(t *testing.T) {
	f := newFleet(t, 2)
	r := f.router(t)
	ctx := context.Background()

	f.shards[1].Close()
	reqs := []crowddb.SubmitRequest{{Text: f.texts(1)[0], K: 5}}
	got, err := r.Selections(ctx, reqs)
	if err != nil {
		t.Fatalf("degraded selection failed: %v", err)
	}
	if len(got.Results[0].Workers) == 0 {
		t.Fatal("no workers selected from surviving shard")
	}
	for _, w := range got.Results[0].Workers {
		if crowddb.ShardOfWorker(w, 2) != 0 {
			t.Errorf("worker %d is owned by the dead shard", w)
		}
	}
	if r.Partials() == 0 {
		t.Error("Partials() did not count the dead scatter leg")
	}
}

package crowdclient

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open: the server has been unreachable at
// the transport level for BreakerThreshold consecutive attempts, and
// the cooldown since the last failure has not yet elapsed. Callers
// branch with errors.Is.
var ErrCircuitOpen = errors.New("crowdclient: circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is a closed/open/half-open circuit breaker over transport
// errors only. HTTP responses of any status are successes here: a
// server answering 503s is alive and shedding, and hammering it less
// is the retry policy's job, not the breaker's — the breaker exists
// for the case where nothing answers at all (blackhole, partition,
// dead process). Safe for concurrent use.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	state    breakerState
	failures int       // consecutive transport failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: the single trial is in flight

	opens     int64 // transitions into open
	fastFails int64 // requests refused without touching the network
}

func newBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *breaker {
	if clock == nil {
		clock = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// allow gates one attempt. While open it fails fast until the cooldown
// elapses, then admits exactly one half-open trial; concurrent
// requests during the trial keep failing fast.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return nil
	case bkOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown {
			b.fastFails++
			return ErrCircuitOpen
		}
		b.state = bkHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			b.fastFails++
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// record reports the outcome of an admitted attempt: success is "the
// server answered" (any HTTP status), failure is a transport error.
func (b *breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkHalfOpen {
		b.probing = false
		if success {
			b.state = bkClosed
			b.failures = 0
			return
		}
		b.state = bkOpen
		b.openedAt = b.clock()
		b.opens++
		return
	}
	if success {
		b.failures = 0
		return
	}
	b.failures++
	if b.state == bkClosed && b.failures >= b.threshold {
		b.state = bkOpen
		b.openedAt = b.clock()
		b.opens++
	}
}

// neutral reports an attempt that proved nothing about the server — a
// context cancelled by the caller. It releases a half-open trial slot
// without moving the state machine.
func (b *breaker) neutral() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// snapshot returns (state, opens, fastFails) for ClientStats.
func (b *breaker) snapshot() (string, int64, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens, b.fastFails
}

// retryBudget is a token bucket bounding retries across the whole
// client: N concurrent callers against a struggling server otherwise
// multiply its load by the per-request retry factor exactly when it
// can least afford it. Each retry spends a token, each success refunds
// one (capped), and an empty bucket turns every request into
// first-attempt-only until the server starts answering again.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	limit  float64
}

func newRetryBudget(limit int) *retryBudget {
	return &retryBudget{tokens: float64(limit), limit: float64(limit)}
}

// take spends one token; false means the budget is exhausted.
func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns one token on a successful request, up to the cap.
func (b *retryBudget) refund() {
	b.mu.Lock()
	if b.tokens < b.limit {
		b.tokens++
	}
	b.mu.Unlock()
}

// level reports the current token count.
func (b *retryBudget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

package crowdclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowdselect/internal/crowddb"
)

// notPrimaryHandler refuses every request with the replica gate's 421
// envelope, pointing at primaryURL.
func notPrimaryHandler(hits *int32, primaryURL string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(hits, 1)
		w.Header().Set("X-Crowdd-Primary", primaryURL)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(crowddb.ErrorEnvelope{
			Error: crowddb.ErrorBody{Code: "not_primary", Message: "replica: mutations go to the primary"},
		})
	})
}

func submitOK(hits *int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(hits, 1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintln(w, `{"task_id": 7, "workers": [1, 2]}`)
	})
}

// TestRetryAfterFloorsBackoff: a shedding 503 with Retry-After must
// stretch the next backoff to at least the server's hint instead of
// hammering it again after the (much shorter) exponential delay.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"workers": 3}`)
	}))
	defer srv.Close()

	var slept []time.Duration
	cli := New(srv.URL, Options{
		Timeout: 5 * time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := cli.Stats(context.Background()); err != nil {
		t.Fatalf("GET through shedding server: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1 (one shed, one success)", len(slept))
	}
	if slept[0] < 3*time.Second {
		t.Errorf("backoff after shed = %v, want >= 3s (the Retry-After floor)", slept[0])
	}
}

// TestRetryAfterCapped: an absurd Retry-After must not park the client
// for the server's full ask — the floor is capped at 10s.
func TestRetryAfterCapped(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"workers": 1}`)
	}))
	defer srv.Close()

	var slept []time.Duration
	cli := New(srv.URL, Options{
		Timeout: 5 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := cli.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 10*time.Second {
		t.Errorf("slept %v, want exactly one 10s sleep (capped hint)", slept)
	}
}

// TestParseRetryAfter covers both RFC forms and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("5"); d != 5*time.Second {
		t.Errorf("delta-seconds: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty: %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Errorf("negative: %v", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Errorf("garbage: %v", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 25*time.Second || d > 30*time.Second {
		t.Errorf("http-date: %v, want ~30s", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date: %v", d)
	}
}

// TestMultiWriteFollowsPrimaryRedirect: a write hitting a replica gets
// the 421 + X-Crowdd-Primary refusal and lands on the named endpoint;
// the Multi then remembers it so the next write pays no extra hop.
func TestMultiWriteFollowsPrimaryRedirect(t *testing.T) {
	var primaryHits int32
	primary := httptest.NewServer(submitOK(&primaryHits))
	defer primary.Close()
	var replicaHits int32
	replica := httptest.NewServer(notPrimaryHandler(&replicaHits, primary.URL))
	defer replica.Close()

	// The replica is listed first, so the first write starts wrong.
	m, err := NewMulti([]string{replica.URL, primary.URL}, Options{
		Timeout: 5 * time.Second, Retries: 1, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sub, err := m.SubmitTask(ctx, "which endpoint takes writes", 2)
	if err != nil {
		t.Fatalf("write through redirect: %v", err)
	}
	if sub.TaskID != 7 {
		t.Errorf("sub = %+v", sub)
	}
	if got := m.Primary(); got != primary.URL {
		t.Errorf("believed primary %q, want %q", got, primary.URL)
	}
	if m.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", m.Failovers())
	}

	// Second write goes straight to the learned primary.
	if _, err := m.SubmitTask(ctx, "again", 2); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&replicaHits); got != 1 {
		t.Errorf("replica hit %d times, want 1 (primary learned after redirect)", got)
	}
}

// TestMultiWriteFailsOverOnDialError: a dead believed-primary (the
// request provably never left the client) rotates the write to the
// next endpoint.
func TestMultiWriteFailsOverOnDialError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	var hits int32
	alive := httptest.NewServer(submitOK(&hits))
	defer alive.Close()

	m, err := NewMulti([]string{deadURL, alive.URL}, Options{
		Timeout: 2 * time.Second, Retries: 0, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitTask(context.Background(), "failover please", 2); err != nil {
		t.Fatalf("write with dead primary: %v", err)
	}
	if got := m.Primary(); got != alive.URL {
		t.Errorf("believed primary %q, want %q", got, alive.URL)
	}
}

// TestMultiWriteDoesNotFailoverOnAmbiguous5xx: a 500 from the primary
// does not prove the mutation was unapplied, so the Multi must return
// the error instead of risking a double-apply elsewhere.
func TestMultiWriteDoesNotFailoverOnAmbiguous5xx(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	var hits int32
	other := httptest.NewServer(submitOK(&hits))
	defer other.Close()

	m, err := NewMulti([]string{bad.URL, other.URL}, Options{
		Timeout: 2 * time.Second, Retries: 0, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitTask(context.Background(), "ambiguous", 2); err == nil {
		t.Fatal("write returned nil through a 500")
	}
	if got := atomic.LoadInt32(&hits); got != 0 {
		t.Errorf("mutation reached the other endpoint %d times — double-apply risk", got)
	}
	if m.Failovers() != 0 {
		t.Errorf("failovers = %d, want 0", m.Failovers())
	}
}

// TestMultiReadFailsOverToAnyEndpoint: reads round-robin and keep
// answering while one endpoint serves 5xx.
func TestMultiReadFailsOverToAnyEndpoint(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	var hits int32
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"workers": 9}`)
	}))
	defer up.Close()

	m, err := NewMulti([]string{down.URL, up.URL}, Options{
		Timeout: 2 * time.Second, Retries: 0, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every read lands regardless of where the cursor starts.
	for i := 0; i < 4; i++ {
		st, err := m.Stats(context.Background())
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if st.Workers != 9 {
			t.Fatalf("read %d: stats = %+v", i, st)
		}
	}
	if got := atomic.LoadInt32(&hits); got != 4 {
		t.Errorf("healthy endpoint answered %d reads, want 4", got)
	}
}

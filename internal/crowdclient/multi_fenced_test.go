package crowdclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowdselect/internal/crowddb"
)

// fencedHandler refuses every request with the sealed node's 409
// fenced envelope, hinting at newPrimary and gossiping its fencing
// state.
func fencedHandler(hits *int32, newPrimary, history string, epoch uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(hits, 1)
		if newPrimary != "" {
			w.Header().Set("X-Crowdd-Primary", newPrimary)
		}
		w.Header().Set("X-Crowdd-History", history)
		w.Header().Set("X-Crowdd-Fencing-Epoch", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(crowddb.ErrorEnvelope{
			Error: crowddb.ErrorBody{Code: "fenced", Message: "node is fenced"},
		})
	})
}

// TestMultiWriteFollowsFencedRedirect: a 409 fenced from the believed
// primary proves the mutation was not applied, so the Multi forgets it
// and re-resolves from the X-Crowdd-Primary hint — the client half of
// a supervisor failover.
func TestMultiWriteFollowsFencedRedirect(t *testing.T) {
	var newHits int32
	var sawEpoch atomic.Value
	newPrimary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&newHits, 1)
		sawEpoch.Store(r.Header.Get("X-Crowdd-Fencing-Epoch"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"task_id": 7, "workers": [1, 2]}`))
	}))
	defer newPrimary.Close()
	var oldHits int32
	oldPrimary := httptest.NewServer(fencedHandler(&oldHits, newPrimary.URL, "h1", 2))
	defer oldPrimary.Close()

	// The deposed node is listed first: the initial believed primary.
	m, err := NewMulti([]string{oldPrimary.URL, newPrimary.URL}, Options{
		Timeout: 5 * time.Second, Retries: 1, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sub, err := m.SubmitTask(ctx, "land on the new primary", 2)
	if err != nil {
		t.Fatalf("write through fenced redirect: %v", err)
	}
	if sub.TaskID != 7 {
		t.Errorf("sub = %+v", sub)
	}
	if got := m.Primary(); got != newPrimary.URL {
		t.Errorf("believed primary %q, want the hinted %q", got, newPrimary.URL)
	}
	if m.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", m.Failovers())
	}

	// The believed primary is forgotten for good: the next write never
	// touches the deposed node again.
	if _, err := m.SubmitTask(ctx, "straight to the winner", 2); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&oldHits); got != 1 {
		t.Errorf("deposed node hit %d times, want 1", got)
	}

	// The Multi gossips the epoch it learned from the refusal onward:
	// the write that landed on the new primary carried epoch 2.
	if got, _ := sawEpoch.Load().(string); got != "2" {
		t.Errorf("new primary saw X-Crowdd-Fencing-Epoch %q, want 2 (gossiped from the refusal)", got)
	}
}

// TestMultiFencedRedirectIsBounded: two sealed nodes hinting at each
// other must not trap the Multi in a redirect loop — each endpoint is
// tried a bounded number of times, then the typed error surfaces.
func TestMultiFencedRedirectIsBounded(t *testing.T) {
	var hitsA, hitsB int32
	var urlA, urlB string
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fencedHandler(&hitsA, urlB, "h1", 2).ServeHTTP(w, r)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fencedHandler(&hitsB, urlA, "h1", 2).ServeHTTP(w, r)
	}))
	defer b.Close()
	urlA, urlB = a.URL, b.URL

	m, err := NewMulti([]string{a.URL, b.URL}, Options{
		Timeout: 5 * time.Second, Retries: 0, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.SubmitTask(context.Background(), "nobody takes this", 2)
	if err == nil {
		t.Fatal("write into a fully fenced fleet succeeded")
	}
	if !strings.Contains(err.Error(), "fenced") {
		t.Errorf("err = %v, want the fenced refusal surfaced", err)
	}
	total := atomic.LoadInt32(&hitsA) + atomic.LoadInt32(&hitsB)
	if max := int32(len(m.Endpoints()) + 1); total > max {
		t.Errorf("fenced ping-pong made %d requests, want <= %d", total, max)
	}
}

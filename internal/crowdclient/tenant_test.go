package crowdclient

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// pathRecorder answers every request with an empty JSON object and
// remembers the paths it served, so tests can assert exactly which
// namespace a client addressed.
type pathRecorder struct {
	mu    sync.Mutex
	paths []string
}

func (pr *pathRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	pr.mu.Lock()
	pr.paths = append(pr.paths, r.URL.Path)
	pr.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, "{}")
}

func (pr *pathRecorder) last(t *testing.T) string {
	t.Helper()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.paths) == 0 {
		t.Fatal("server saw no requests")
	}
	return pr.paths[len(pr.paths)-1]
}

// TestClientTenantScoping: Options.Tenant rewrites every API path into
// the tenant namespace, "default" and "" stay un-prefixed, and
// ForTenant derives scoped views without touching the parent.
func TestClientTenantScoping(t *testing.T) {
	rec := &pathRecorder{}
	ts := httptest.NewServer(rec)
	defer ts.Close()
	ctx := context.Background()
	opts := Options{Timeout: 2 * time.Second, Sleep: func(time.Duration) {}}

	plain := New(ts.URL, opts)
	if got := plain.Tenant(); got != "default" {
		t.Fatalf("unscoped client Tenant() = %q, want default", got)
	}
	if _, err := plain.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/stats" {
		t.Fatalf("unscoped client hit %q, want /api/v1/stats", got)
	}

	// The default tenant's explicit name normalizes to un-prefixed —
	// the two spellings are one namespace, so clients must not split
	// them across cache keys or metrics labels.
	def := New(ts.URL, Options{Timeout: 2 * time.Second, Tenant: "default", Sleep: func(time.Duration) {}})
	if _, err := def.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/stats" {
		t.Fatalf("tenant=default client hit %q, want /api/v1/stats", got)
	}

	acme := plain.ForTenant("acme")
	if got := acme.Tenant(); got != "acme" {
		t.Fatalf("ForTenant view Tenant() = %q, want acme", got)
	}
	if _, err := acme.GetTask(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/t/acme/tasks/7" {
		t.Fatalf("acme client hit %q, want /api/v1/t/acme/tasks/7", got)
	}

	// Deriving a view leaves the parent un-scoped.
	if _, err := plain.GetTask(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/tasks/7" {
		t.Fatalf("parent client hit %q after ForTenant, want /api/v1/tasks/7", got)
	}

	// ForTenant("default") un-scopes a scoped view.
	back := acme.ForTenant("default")
	if _, err := back.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/stats" {
		t.Fatalf("ForTenant(default) view hit %q, want /api/v1/stats", got)
	}
}

// TestClientTenantSharesResilience: a ForTenant view shares the
// parent's circuit breaker — endpoint health is per host, not per
// namespace, so a host melting down opens one breaker for every
// tenant addressing it.
func TestClientTenantSharesResilience(t *testing.T) {
	// A server that dies leaves a refusing port: transport errors are
	// what the breaker counts (HTTP-level errors are the server
	// working — see TestBreakerIgnoresHTTPErrors).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	parent := New(ts.URL, Options{Timeout: time.Second, Retries: 0, Sleep: func(time.Duration) {}})
	acme := parent.ForTenant("acme")

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		_, _ = acme.Stats(ctx)
	}
	if opens := acme.ResilienceStats().BreakerOpens; opens == 0 {
		t.Fatal("sustained dial failure never opened the scoped view's breaker")
	}
	if parent.ResilienceStats().BreakerOpens != acme.ResilienceStats().BreakerOpens {
		t.Fatal("parent and ForTenant view report different breakers; views must share endpoint health")
	}
}

// TestMultiTenantScoping: Multi.ForTenant scopes every per-endpoint
// client and reports the namespace.
func TestMultiTenantScoping(t *testing.T) {
	rec := &pathRecorder{}
	ts := httptest.NewServer(rec)
	defer ts.Close()
	m, err := NewMulti([]string{ts.URL}, Options{Timeout: 2 * time.Second, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tenant(); got != "default" {
		t.Fatalf("unscoped Multi Tenant() = %q, want default", got)
	}
	acme := m.ForTenant("acme")
	if got := acme.Tenant(); got != "acme" {
		t.Fatalf("scoped Multi Tenant() = %q, want acme", got)
	}
	if _, err := acme.GetTask(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := rec.last(t); got != "/api/v1/t/acme/tasks/3" {
		t.Fatalf("scoped Multi hit %q, want /api/v1/t/acme/tasks/3", got)
	}
}

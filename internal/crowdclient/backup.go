package crowdclient

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"crowdselect/internal/crowddb"
)

// Backup streams one backup archive segment (GET /api/v1/backup) into
// dst. since < 0 requests a full backup; since >= 0 requests an
// incremental segment of the records after that seq, and history (the
// archive's history id) is then required — the server refuses a
// foreign history rather than emitting an archive that cannot chain.
//
// Only whole, validated frames reach dst, so dst always holds a
// well-formed archive prefix however the stream ends. The returned
// info reports how far the stream got: on error, info.Resumable says
// whether appending a continuation (Backup with since=info.LastSeq)
// can complete the archive, and info.LastSeq is the resume point.
//
// The stream bypasses the client's retry/backoff/hedge machinery and
// per-request timeout: a backup is a long bulk transfer whose retry
// unit is the resume, driven by the caller. ctx bounds it.
func (c *Client) Backup(ctx context.Context, dst io.Writer, since int64, history string) (crowddb.BackupStreamInfo, error) {
	path := c.scopePath("/api/v1/backup")
	if since >= 0 {
		path += "?since=" + strconv.FormatInt(since, 10) + "&history=" + url.QueryEscape(history)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return crowddb.BackupStreamInfo{}, err
	}
	if c.fleetToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.fleetToken)
	}
	// A timeout-free twin of the configured client: same transport, no
	// overall deadline — the archive takes as long as it takes.
	hc := &http.Client{Transport: c.hc.Transport, CheckRedirect: c.hc.CheckRedirect, Jar: c.hc.Jar}
	resp, err := hc.Do(req)
	if err != nil {
		return crowddb.BackupStreamInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return crowddb.BackupStreamInfo{}, apiError(resp, body)
	}
	return crowddb.CopyBackupStream(dst, resp.Body)
}

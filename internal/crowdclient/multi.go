package crowdclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"

	"crowdselect/internal/crowddb"
)

// Multi fans one logical client across a primary and its read
// replicas. It routes by operation class:
//
//   - Reads (selections, gets, stats) round-robin across every
//     endpoint and fail over to the next on transport errors, an open
//     breaker, 5xx, or a not_primary refusal — any healthy copy of the
//     model answers a read.
//   - Writes go to the believed primary only. Failover is deliberately
//     narrow: the Multi moves to another endpoint only when the error
//     proves the mutation was not applied — the breaker was open or
//     the dial failed (the request never reached a server), or the
//     server itself refused with not_primary (421) or fenced (409), in
//     which case the X-Crowdd-Primary redirect is followed when it
//     names a configured endpoint and the refuser is forgotten as the
//     believed primary. A generic transport error mid-request is returned to
//     the caller instead, because retrying it elsewhere could
//     double-apply.
//
// After a failover the Multi remembers the endpoint that accepted the
// write as the new believed primary, so steady-state traffic pays no
// discovery cost. It is safe for concurrent use.
type Multi struct {
	clients   []*Client
	endpoints []string
	primary   atomic.Int64 // index of the believed primary
	rr        atomic.Int64 // round-robin cursor for reads
	failovers atomic.Int64
}

// NewMulti builds a Multi over the given base URLs — the first is the
// initial believed primary — sharing one Options across the per-
// endpoint clients. At least one endpoint is required.
func NewMulti(endpoints []string, opts Options) (*Multi, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("crowdclient: NewMulti needs at least one endpoint")
	}
	m := &Multi{}
	for _, e := range endpoints {
		c := New(e, opts)
		m.clients = append(m.clients, c)
		m.endpoints = append(m.endpoints, c.base)
	}
	// One epoch-gossip store across the fleet: a fencing epoch learned
	// from any endpoint is echoed to all of them, so the Multi itself
	// carries the seal to a deposed primary it can still reach.
	for _, c := range m.clients[1:] {
		c.gossip = m.clients[0].gossip
	}
	return m, nil
}

// ForTenant derives a Multi scoped to one tenant namespace: every
// per-endpoint client is the corresponding ForTenant view, sharing
// the parent's breakers, retry budgets and epoch gossip. The believed
// primary carries over — tenants share one replication topology, so
// what one tenant's traffic learned about who is primary is equally
// true for the others. Failover counters start fresh per view.
func (m *Multi) ForTenant(name string) *Multi {
	nm := &Multi{endpoints: append([]string(nil), m.endpoints...)}
	for _, c := range m.clients {
		nm.clients = append(nm.clients, c.ForTenant(name))
	}
	nm.primary.Store(m.primary.Load())
	return nm
}

// Tenant reports the namespace this Multi is scoped to ("default"
// for an unscoped Multi).
func (m *Multi) Tenant() string { return m.clients[0].Tenant() }

// Endpoints returns the configured base URLs in order.
func (m *Multi) Endpoints() []string {
	out := make([]string, len(m.endpoints))
	copy(out, m.endpoints)
	return out
}

// Primary returns the base URL currently believed to be the primary.
func (m *Multi) Primary() string {
	return m.endpoints[m.primary.Load()]
}

// Failovers counts write-path failovers since construction.
func (m *Multi) Failovers() int64 { return m.failovers.Load() }

// indexOf resolves a base URL (as sent in X-Crowdd-Primary) to a
// configured endpoint index, or -1.
func (m *Multi) indexOf(base string) int {
	base = strings.TrimRight(base, "/")
	for i, e := range m.endpoints {
		if e == base {
			return i
		}
	}
	return -1
}

// notPrimaryErr extracts the *APIError when err is a replica's 421
// not_primary refusal.
func notPrimaryErr(err error) *APIError {
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code == "wrong_shard" {
		// wrong_shard is also 421, but it is a property of the whole
		// shard, not of this endpoint — failing over within the shard
		// cannot help. The Router handles it by re-routing.
		return nil
	}
	if ae.Code == "not_primary" || ae.StatusCode == http.StatusMisdirectedRequest {
		return ae
	}
	return nil
}

// fencedErr extracts the *APIError when err is a sealed node's 409
// fenced refusal — the mutation provably was not applied, and the
// X-Crowdd-Primary hint (when present) names the node that deposed
// the refuser.
func fencedErr(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) && ae.Code == "fenced" {
		return ae
	}
	return nil
}

// redirectErr merges the two refusals that carry a better primary: a
// replica's 421 not_primary and a sealed node's 409 fenced.
func redirectErr(err error) *APIError {
	if ae := notPrimaryErr(err); ae != nil {
		return ae
	}
	return fencedErr(err)
}

// dialErr reports whether err proves the request never reached a
// server: the TCP dial itself failed.
func dialErr(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// writeFailover reports whether a write may safely move to another
// endpoint: only when the mutation provably was not applied anywhere.
func writeFailover(err error) bool {
	return errors.Is(err, ErrCircuitOpen) || dialErr(err) || redirectErr(err) != nil
}

// readFailover reports whether a read should try the next endpoint.
// Reads are idempotent, so any failure that another copy might not
// share qualifies: transport errors, an open breaker, 5xx, and
// replica refusals.
func readFailover(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Code == "wrong_shard" {
			return false // every copy of this shard refuses identically
		}
		return ae.StatusCode >= 500 || ae.StatusCode == http.StatusMisdirectedRequest
	}
	return true // transport error or ErrCircuitOpen
}

// write runs fn against the believed primary, following not_primary
// redirects and failing over on provably-unapplied errors. Each
// endpoint is tried at most once plus one redirect hop.
func (m *Multi) write(fn func(c *Client) error) error {
	idx := int(m.primary.Load())
	var lastErr error
	for tried := 0; tried <= len(m.clients); tried++ {
		err := fn(m.clients[idx])
		if err == nil {
			if int64(idx) != m.primary.Load() {
				m.primary.Store(int64(idx))
			}
			return nil
		}
		lastErr = err
		if !writeFailover(err) {
			return err
		}
		m.failovers.Add(1)
		next := -1
		if ae := redirectErr(err); ae != nil {
			if ae.Primary != "" {
				next = m.indexOf(ae.Primary)
			}
			// The refuser is certainly not the primary: forget it now, so
			// the next write does not start there even if every endpoint
			// fails this round. The hinted endpoint (or the next in line)
			// becomes the believed primary until a success says otherwise.
			if int64(idx) == m.primary.Load() {
				forget := next
				if forget < 0 {
					forget = (idx + 1) % len(m.clients)
				}
				m.primary.Store(int64(forget))
			}
		}
		if next < 0 {
			next = (idx + 1) % len(m.clients)
		}
		idx = next
	}
	return fmt.Errorf("write failed on every endpoint: %w", lastErr)
}

// read runs fn against endpoints in round-robin order, failing over
// until one answers.
func (m *Multi) read(fn func(c *Client) error) error {
	start := int(m.rr.Add(1)-1) % len(m.clients)
	if start < 0 {
		start += len(m.clients)
	}
	var lastErr error
	for i := 0; i < len(m.clients); i++ {
		c := m.clients[(start+i)%len(m.clients)]
		err := fn(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if !readFailover(err) {
			return err
		}
	}
	return fmt.Errorf("read failed on every endpoint: %w", lastErr)
}

// Selections ranks crowds for a batch of task texts on any available
// endpoint (replicas serve this read).
func (m *Multi) Selections(ctx context.Context, tasks []crowddb.SubmitRequest) (crowddb.SelectionsResponse, error) {
	var out crowddb.SelectionsResponse
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.Selections(ctx, tasks)
		return e
	})
	return out, err
}

// GetTask fetches a stored task from any available endpoint.
func (m *Multi) GetTask(ctx context.Context, id int) (crowddb.TaskRecord, error) {
	var out crowddb.TaskRecord
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.GetTask(ctx, id)
		return e
	})
	return out, err
}

// Stats fetches the database counters from any available endpoint.
func (m *Multi) Stats(ctx context.Context) (crowddb.StatsResponse, error) {
	var out crowddb.StatsResponse
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.Stats(ctx)
		return e
	})
	return out, err
}

// SubmitTask submits one task to the primary, failing over per the
// write policy.
func (m *Multi) SubmitTask(ctx context.Context, text string, k int) (crowddb.SubmitResponse, error) {
	var out crowddb.SubmitResponse
	err := m.write(func(c *Client) error {
		var e error
		out, e = c.SubmitTask(ctx, text, k)
		return e
	})
	return out, err
}

// SubmitBatch submits a batch to the primary.
func (m *Multi) SubmitBatch(ctx context.Context, tasks []crowddb.SubmitRequest) ([]crowddb.SubmitResponse, error) {
	var out []crowddb.SubmitResponse
	err := m.write(func(c *Client) error {
		var e error
		out, e = c.SubmitBatch(ctx, tasks)
		return e
	})
	return out, err
}

// Answer records a worker's answer on the primary.
func (m *Multi) Answer(ctx context.Context, taskID, workerID int, answer string) error {
	return m.write(func(c *Client) error {
		return c.Answer(ctx, taskID, workerID, answer)
	})
}

// Feedback resolves a task with per-worker scores on the primary.
func (m *Multi) Feedback(ctx context.Context, taskID int, scores map[int]float64) (crowddb.TaskRecord, error) {
	var out crowddb.TaskRecord
	err := m.write(func(c *Client) error {
		var e error
		out, e = c.Feedback(ctx, taskID, scores)
		return e
	})
	return out, err
}

// Query runs one crowdql statement on the primary (a SELECT CROWD
// submits tasks, so the whole endpoint routes as a write).
func (m *Multi) Query(ctx context.Context, q string) (json.RawMessage, error) {
	var out json.RawMessage
	err := m.write(func(c *Client) error {
		var e error
		out, e = c.Query(ctx, q)
		return e
	})
	return out, err
}

// GetWorker fetches a worker row from any available endpoint.
func (m *Multi) GetWorker(ctx context.Context, id int) (crowddb.Worker, error) {
	var out crowddb.Worker
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.GetWorker(ctx, id)
		return e
	})
	return out, err
}

// SetPresence flips a worker's online flag on the primary.
func (m *Multi) SetPresence(ctx context.Context, id int, online bool) error {
	return m.write(func(c *Client) error {
		return c.SetPresence(ctx, id, online)
	})
}

// SelectionsScored is Selections with per-worker Eq. 1 scores, served
// by primary or replica alike.
func (m *Multi) SelectionsScored(ctx context.Context, tasks []crowddb.SubmitRequest) (crowddb.SelectionsResponse, error) {
	var out crowddb.SelectionsResponse
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.SelectionsScored(ctx, tasks)
		return e
	})
	return out, err
}

// SkillFeedback folds feedback into locally-owned posteriors on the
// primary (mutation — follows not_primary redirects). forwardOf >= 0
// keys the request for owner-side deduplication; see
// Client.SkillFeedback.
func (m *Multi) SkillFeedback(ctx context.Context, forwardOf int, taskText string, scores map[int]float64) error {
	return m.write(func(c *Client) error {
		return c.SkillFeedback(ctx, forwardOf, taskText, scores)
	})
}

// Topology reads the fleet layout from whichever endpoint answers.
func (m *Multi) Topology(ctx context.Context) (crowddb.Topology, error) {
	var out crowddb.Topology
	err := m.read(func(c *Client) error {
		var e error
		out, e = c.Topology(ctx)
		return e
	})
	return out, err
}

// Client returns the per-endpoint client at index i, for direct
// access (promotion, metrics).
func (m *Multi) Client(i int) *Client { return m.clients[i] }

// Package crowdclient is the typed Go client for the crowdd v1 HTTP
// API (crowddb.Server). It owns the transport policy every caller
// wants and none should re-implement: per-request timeouts, bounded
// retries with exponential backoff plus jitter — connection errors
// always (for mutations only when the dial failed, so a request that
// may have reached the server is never sent twice), and 5xx responses
// on idempotent GETs.
//
// Non-2xx responses decode the server's error envelope
// {"error": {"code", "message"}} into *APIError, so callers can branch
// on the stable code without string matching.
package crowdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"crowdselect/internal/crowddb"
)

// Options tunes a Client; the zero value selects the defaults noted
// per field.
type Options struct {
	// Timeout bounds each HTTP request end to end (default 10s).
	// Ignored when HTTPClient is set.
	Timeout time.Duration
	// Retries is the maximum number of retry attempts after the first
	// failure (default 3). Negative disables retrying.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// attempt, capped at 5s, with up to 50% random jitter subtracted so
	// synchronized clients fan out (default 200ms).
	Backoff time.Duration
	// HTTPClient overrides the transport entirely (tests, custom TLS).
	HTTPClient *http.Client
	// Sleep replaces time.Sleep between retries (test hook).
	Sleep func(time.Duration)
}

// Client talks to one crowdd base URL. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
}

// New returns a client for the crowdd at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is trimmed.
func New(baseURL string, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 200 * time.Millisecond
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: opts.Timeout}
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      opts.HTTPClient,
		retries: opts.Retries,
		backoff: opts.Backoff,
		sleep:   opts.Sleep,
	}
}

// APIError is a non-2xx response, carrying the server's error envelope
// when it sent one.
type APIError struct {
	// StatusCode is the HTTP status, e.g. 404.
	StatusCode int
	// Status is the full status line, e.g. "404 Not Found".
	Status string
	// Code is the envelope's machine-readable class ("bad_request",
	// "not_found", …); empty when the body was not an envelope.
	Code string
	// Message is the envelope's human-readable detail, or the raw body.
	Message string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%s: %s [%s]", e.Status, e.Message, e.Code)
	}
	return fmt.Sprintf("%s: %s", e.Status, e.Message)
}

// backoffFor computes the delay before retry attempt n (1-based):
// exponential from the base, capped at 5s, with up to 50% random
// jitter subtracted.
func (c *Client) backoffFor(n int) time.Duration {
	d := c.backoff << (n - 1)
	if max := 5 * time.Second; d > max {
		d = max
	}
	return d - time.Duration(rand.Int63n(int64(d)/2+1))
}

// retriableErr reports whether a transport error may be retried for
// the given method. GETs are idempotent, so any transport failure is
// fair game; for mutating requests only dial errors are safe — the
// request never reached the server, so retrying cannot double-apply.
func retriableErr(method string, err error) bool {
	if method == http.MethodGet {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// do issues the request with the retry policy: transport errors per
// retriableErr, and 5xx responses on GETs. The response is the first
// success or non-retriable status; err is the final failure after the
// retry budget is spent. A cancelled ctx stops the retry loop.
func (c *Client) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.sleep(c.backoffFor(attempt))
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, reader)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil || !retriableErr(method, err) {
				return nil, err
			}
			continue
		}
		if resp.StatusCode >= 500 && method == http.MethodGet && attempt < c.retries {
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(payload)))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", c.retries+1, lastErr)
}

// Do issues one API request and returns the raw response payload; path
// is relative to the base URL (e.g. "/api/v1/stats") and a non-nil
// body is sent as JSON. Non-2xx responses return *APIError. Typed
// methods below cover the whole v1 surface; Do is the escape hatch for
// endpoints with free-form payloads (query, metrics).
func (c *Client) Do(ctx context.Context, method, path string, body any) ([]byte, error) {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = b
	}
	resp, err := c.do(ctx, method, c.base+path, payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, apiError(resp, out)
	}
	return out, nil
}

// apiError builds the *APIError for a non-2xx response, decoding the
// server's envelope when present.
func apiError(resp *http.Response, body []byte) *APIError {
	e := &APIError{
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		Message:    strings.TrimSpace(string(body)),
	}
	var env crowddb.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
	}
	return e
}

// get decodes a GET response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	b, err := c.Do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// post sends body and, when out is non-nil, decodes the response.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	b, err := c.Do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

// SubmitTask submits one task (POST /api/v1/tasks); k ≤ 0 selects the
// server's default crowd size.
func (c *Client) SubmitTask(ctx context.Context, text string, k int) (crowddb.SubmitResponse, error) {
	var out crowddb.SubmitResponse
	err := c.post(ctx, "/api/v1/tasks", crowddb.SubmitRequest{Text: text, K: k}, &out)
	return out, err
}

// SubmitBatch submits a whole batch in one round trip
// (POST /api/v1/tasks:batch) and returns one result per task, in
// request order.
func (c *Client) SubmitBatch(ctx context.Context, tasks []crowddb.SubmitRequest) ([]crowddb.SubmitResponse, error) {
	var out crowddb.BatchSubmitResponse
	err := c.post(ctx, "/api/v1/tasks:batch", crowddb.BatchSubmitRequest{Tasks: tasks}, &out)
	return out.Results, err
}

// GetTask fetches a stored task (GET /api/v1/tasks/{id}).
func (c *Client) GetTask(ctx context.Context, id int) (crowddb.TaskRecord, error) {
	var out crowddb.TaskRecord
	err := c.get(ctx, "/api/v1/tasks/"+strconv.Itoa(id), &out)
	return out, err
}

// Answer records one worker's answer
// (POST /api/v1/tasks/{id}/answers).
func (c *Client) Answer(ctx context.Context, taskID, workerID int, answer string) error {
	return c.post(ctx, fmt.Sprintf("/api/v1/tasks/%d/answers", taskID),
		map[string]any{"worker": workerID, "answer": answer}, nil)
}

// Feedback resolves a task with per-worker scores
// (POST /api/v1/tasks/{id}/feedback) and returns the resolved record.
func (c *Client) Feedback(ctx context.Context, taskID int, scores map[int]float64) (crowddb.TaskRecord, error) {
	wire := make(map[string]float64, len(scores))
	for w, s := range scores {
		wire[strconv.Itoa(w)] = s
	}
	var out crowddb.TaskRecord
	err := c.post(ctx, fmt.Sprintf("/api/v1/tasks/%d/feedback", taskID),
		map[string]any{"scores": wire}, &out)
	return out, err
}

// GetWorker fetches a worker row (GET /api/v1/workers/{id}).
func (c *Client) GetWorker(ctx context.Context, id int) (crowddb.Worker, error) {
	var out crowddb.Worker
	err := c.get(ctx, "/api/v1/workers/"+strconv.Itoa(id), &out)
	return out, err
}

// SetPresence flips a worker's online flag
// (POST /api/v1/workers/{id}/presence).
func (c *Client) SetPresence(ctx context.Context, id int, online bool) error {
	return c.post(ctx, fmt.Sprintf("/api/v1/workers/%d/presence", id),
		map[string]any{"online": online}, nil)
}

// Stats fetches the crowd database counters (GET /api/v1/stats).
func (c *Client) Stats(ctx context.Context) (crowddb.StatsResponse, error) {
	var out crowddb.StatsResponse
	err := c.get(ctx, "/api/v1/stats", &out)
	return out, err
}

// Query runs one crowdql statement (POST /api/v1/query) and returns
// the raw JSON result.
func (c *Client) Query(ctx context.Context, q string) (json.RawMessage, error) {
	return c.Do(ctx, http.MethodPost, "/api/v1/query", map[string]string{"q": q})
}

// MetricsRaw fetches the metrics snapshot (GET /api/v1/metrics) as raw
// JSON.
func (c *Client) MetricsRaw(ctx context.Context) (json.RawMessage, error) {
	return c.Do(ctx, http.MethodGet, "/api/v1/metrics", nil)
}

// Ready reports nil once GET /readyz answers 200 — the readiness probe
// for scripts that wait out boot-time recovery.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.Do(ctx, http.MethodGet, "/readyz", nil)
	return err
}

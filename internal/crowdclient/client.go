// Package crowdclient is the typed Go client for the crowdd v1 HTTP
// API (crowddb.Server). It owns the transport policy every caller
// wants and none should re-implement: per-request timeouts, bounded
// retries with exponential backoff plus jitter — connection errors
// always (for mutations only when the dial failed, so a request that
// may have reached the server is never sent twice), and 5xx responses
// on idempotent requests (GETs and pure selections).
//
// On top of the per-request policy sit three client-wide guards: a
// closed/open/half-open circuit breaker that fails fast (ErrCircuitOpen)
// once the server stops answering at the transport level, a token-bucket
// retry budget so concurrent callers cannot multiply a retry storm, and
// optional hedging of slow idempotent requests. Stats exposes their
// counters.
//
// Non-2xx responses decode the server's error envelope
// {"error": {"code", "message"}} into *APIError, so callers can branch
// on the stable code without string matching.
package crowdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdselect/internal/crowddb"
)

// Options tunes a Client; the zero value selects the defaults noted
// per field.
type Options struct {
	// Timeout bounds each HTTP request end to end (default 10s).
	// Ignored when HTTPClient is set.
	Timeout time.Duration
	// Retries is the maximum number of retry attempts after the first
	// failure (default 3). Negative disables retrying.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// attempt, capped at 5s, with up to 50% random jitter subtracted so
	// synchronized clients fan out (default 200ms).
	Backoff time.Duration
	// HTTPClient overrides the transport entirely (tests, custom TLS).
	HTTPClient *http.Client
	// Sleep replaces time.Sleep between retries (test hook).
	Sleep func(time.Duration)

	// BreakerThreshold is the number of consecutive transport failures
	// that opens the circuit breaker (default 5; negative disables the
	// breaker). Only transport errors count: a server answering any
	// HTTP status — even 503 — is alive, so shed and degraded responses
	// never open the breaker and selections keep flowing.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before one
	// half-open trial request is let through (default 1s). The trial's
	// outcome closes the breaker or re-opens it for another cooldown.
	BreakerCooldown time.Duration
	// RetryBudget is a token bucket bounding retries across the whole
	// client, so many concurrent callers cannot multiply a retry storm:
	// each retry spends one token, each successful request refunds one,
	// and when the bucket is empty requests fail after their first
	// attempt (default 10; negative disables the budget).
	RetryBudget int
	// HedgeDelay, when > 0, hedges idempotent requests: if no response
	// arrives within the delay, a second identical request races the
	// first and the earlier response wins. Spends latency variance,
	// not correctness — only GETs and pure selections are hedged.
	HedgeDelay time.Duration
	// Seed seeds the client's private jitter source; 0 seeds from the
	// clock. Each client owns its randomness — nothing touches the
	// global math/rand state.
	Seed int64
	// Clock replaces time.Now for the breaker cooldown (test hook).
	Clock func() time.Time
	// FleetToken authenticates fleet-control requests when the server
	// gates /api/v1/replication/* (Server.SetFleetToken). Sent as
	// "Authorization: Bearer <token>" on every request; empty sends
	// nothing.
	FleetToken string
	// Tenant scopes the client to one tenant namespace: every
	// /api/v1/... path is rewritten to /api/v1/t/{tenant}/... before it
	// leaves the client, so the whole typed surface (and Do) addresses
	// that tenant's crowd. Empty or "default" keeps the un-prefixed
	// paths — an exact alias for the default tenant. See also
	// Client.ForTenant for deriving scoped views from one client.
	Tenant string
}

// Client talks to one crowdd base URL. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	sleep      func(time.Duration)
	fleetToken string
	tenant     string // "": default tenant (un-prefixed paths)

	brk        *breaker     // nil: breaker disabled
	budget     *retryBudget // nil: unbounded retries
	hedgeDelay time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand

	gossip *epochGossip // never nil; shared across a Multi's clients

	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

// epochGossip remembers the highest fencing epoch seen for the
// history this client (or Multi) talks to, and echoes it on every
// request as an advisory hint. Servers never trust the echo — an
// inbound header that could seal a node would let any client forge a
// deposition — but it rides along for diagnostics, and the remembered
// epoch is what lets the Multi re-resolve after a fenced refusal
// (DESIGN §12).
type epochGossip struct {
	mu      sync.Mutex
	history string
	epoch   uint64
}

func (g *epochGossip) load() (string, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.history, g.epoch
}

// observe folds in a server-advertised (history, epoch) pair. Within
// one history the epoch is monotone; a different history replaces the
// pair outright (the client now talks to another lineage — after a
// wipe, positions and epochs from the old one mean nothing).
func (g *epochGossip) observe(history string, epoch uint64) {
	if history == "" || epoch == 0 {
		return
	}
	g.mu.Lock()
	if history == g.history {
		if epoch > g.epoch {
			g.epoch = epoch
		}
	} else {
		g.history, g.epoch = history, epoch
	}
	g.mu.Unlock()
}

// New returns a client for the crowdd at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is trimmed.
func New(baseURL string, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 200 * time.Millisecond
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: opts.Timeout}
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = time.Second
	}
	if opts.RetryBudget == 0 {
		opts.RetryBudget = 10
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         opts.HTTPClient,
		retries:    opts.Retries,
		backoff:    opts.Backoff,
		sleep:      opts.Sleep,
		fleetToken: opts.FleetToken,
		tenant:     normalizeTenant(opts.Tenant),
		hedgeDelay: opts.HedgeDelay,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		gossip:     &epochGossip{},
	}
	if opts.BreakerThreshold > 0 {
		c.brk = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock)
	}
	if opts.RetryBudget > 0 {
		c.budget = newRetryBudget(opts.RetryBudget)
	}
	return c
}

// normalizeTenant maps the default tenant's explicit name to the
// empty string, so "default" and "" build byte-identical requests.
func normalizeTenant(name string) string {
	if name == crowddb.DefaultTenant {
		return ""
	}
	return name
}

// ForTenant derives a client scoped to one tenant namespace: every
// /api/v1/... path it issues is rewritten to /api/v1/t/{name}/....
// The view shares the parent's transport, circuit breaker, retry
// budget and epoch gossip — tenancy scopes the paths, not the
// resilience state, so a breaker opened by one tenant's traffic
// protects the others from the same dead server. name "default" (or
// "") returns a view on the un-prefixed paths.
func (c *Client) ForTenant(name string) *Client {
	c.rngMu.Lock()
	seed := c.rng.Int63()
	c.rngMu.Unlock()
	return &Client{
		base:       c.base,
		hc:         c.hc,
		retries:    c.retries,
		backoff:    c.backoff,
		sleep:      c.sleep,
		fleetToken: c.fleetToken,
		tenant:     normalizeTenant(name),
		brk:        c.brk,
		budget:     c.budget,
		hedgeDelay: c.hedgeDelay,
		rng:        rand.New(rand.NewSource(seed)),
		gossip:     c.gossip,
	}
}

// Tenant reports the namespace this client is scoped to ("default"
// for an unscoped client).
func (c *Client) Tenant() string {
	if c.tenant == "" {
		return crowddb.DefaultTenant
	}
	return c.tenant
}

// scopePath maps a canonical /api/v1/... path into the client's
// tenant namespace; non-API paths (/readyz, /healthz) pass through.
func (c *Client) scopePath(path string) string {
	if c.tenant == "" {
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/"); ok {
		return "/api/v1/t/" + c.tenant + "/" + rest
	}
	return path
}

// ClientStats snapshots the client's resilience counters.
type ClientStats struct {
	BreakerState     string  `json:"breaker_state"`
	BreakerOpens     int64   `json:"breaker_opens"`
	BreakerFastFails int64   `json:"breaker_fast_fails"`
	RetryTokens      float64 `json:"retry_tokens"`
	HedgesLaunched   int64   `json:"hedges_launched"`
	HedgeWins        int64   `json:"hedge_wins"`
}

// ResilienceStats snapshots the breaker, retry-budget and hedging
// counters. (Stats, by contrast, is the server's GET /api/v1/stats.)
func (c *Client) ResilienceStats() ClientStats {
	st := ClientStats{
		BreakerState:   "disabled",
		RetryTokens:    -1,
		HedgesLaunched: c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
	}
	if c.brk != nil {
		st.BreakerState, st.BreakerOpens, st.BreakerFastFails = c.brk.snapshot()
	}
	if c.budget != nil {
		st.RetryTokens = c.budget.level()
	}
	return st
}

// APIError is a non-2xx response, carrying the server's error envelope
// when it sent one.
type APIError struct {
	// StatusCode is the HTTP status, e.g. 404.
	StatusCode int
	// Status is the full status line, e.g. "404 Not Found".
	Status string
	// Code is the envelope's machine-readable class ("bad_request",
	// "not_found", …); empty when the body was not an envelope.
	Code string
	// Message is the envelope's human-readable detail, or the raw body.
	Message string
	// RetryAfter is the server's Retry-After hint, when it sent one
	// (shed 503s do); zero otherwise.
	RetryAfter time.Duration
	// Primary is the X-Crowdd-Primary redirect a replica attaches to
	// not_primary (421) refusals: the base URL mutations should go to.
	Primary string
	// ShardOwner is the owning shard index a sharded node attaches to
	// wrong_shard (421) refusals via X-Crowdd-Shard-Owner; -1 when
	// absent.
	ShardOwner int
	// ShardOwnerURL is the owner's base URL (X-Crowdd-Shard-Owner-URL)
	// when the refusing node's topology knows it.
	ShardOwnerURL string
	// FencingEpoch is the refusing node's advertised fencing epoch
	// (X-Crowdd-Fencing-Epoch); on a 409 fenced refusal it is the
	// epoch that deposed the node. Zero when absent.
	FencingEpoch uint64
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%s: %s [%s]", e.Status, e.Message, e.Code)
	}
	return fmt.Sprintf("%s: %s", e.Status, e.Message)
}

// backoffFor computes the delay before retry attempt n (1-based):
// exponential from the base, capped at 5s, with up to 50% random
// jitter subtracted (from the client's private source).
func (c *Client) backoffFor(n int) time.Duration {
	d := c.backoff << (n - 1)
	if max := 5 * time.Second; d > max {
		d = max
	}
	c.rngMu.Lock()
	jitter := c.rng.Int63n(int64(d)/2 + 1)
	c.rngMu.Unlock()
	return d - time.Duration(jitter)
}

// idempotent reports whether a request may be repeated safely: GETs,
// and POST .../selections — a pure model read that stores nothing, so
// replaying it cannot double-apply. The suffix match covers both the
// un-prefixed and the tenant-scoped (/api/v1/t/{tenant}/selections)
// spellings. POST .../query is not on the list: a SELECT CROWD
// submits tasks.
func idempotent(method, url string) bool {
	return method == http.MethodGet ||
		(method == http.MethodPost && strings.HasSuffix(url, "/selections") && strings.Contains(url, "/api/"))
}

// retriableErr reports whether a transport error may be retried for
// the given request. Idempotent requests are fair game on any
// transport failure; for mutating requests only dial errors are safe —
// the request never reached the server, so retrying cannot
// double-apply.
func retriableErr(method, url string, err error) bool {
	if idempotent(method, url) {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// attemptResult carries one racing attempt's outcome; idx 1 marks the
// hedge.
type attemptResult struct {
	resp *http.Response
	err  error
	idx  int
}

// attempt issues one HTTP request through the circuit breaker. The
// breaker records only what the attempt proved: an HTTP response of
// any status is a success (the server is alive), a transport error is
// a failure, and a context cancelled by the caller is neutral.
func (c *Client) attempt(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	if c.brk != nil {
		if err := c.brk.allow(); err != nil {
			return nil, err
		}
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		if c.brk != nil {
			c.brk.neutral()
		}
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if h, e := c.gossip.load(); h != "" {
		req.Header.Set("X-Crowdd-History", h)
		req.Header.Set("X-Crowdd-Fencing-Epoch", strconv.FormatUint(e, 10))
	}
	if c.fleetToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.fleetToken)
	}
	resp, err := c.hc.Do(req)
	if err == nil {
		if e, perr := strconv.ParseUint(resp.Header.Get("X-Crowdd-Fencing-Epoch"), 10, 64); perr == nil {
			c.gossip.observe(resp.Header.Get("X-Crowdd-History"), e)
		}
	}
	if c.brk != nil {
		switch {
		case err == nil:
			c.brk.record(true)
		case ctx.Err() != nil:
			c.brk.neutral()
		default:
			c.brk.record(false)
		}
	}
	return resp, err
}

// hedged races a second identical attempt against a slow first one:
// the hedge launches if no response lands within HedgeDelay, and the
// earlier response wins. The loser is drained in the background so
// its connection returns to the pool. Only called for idempotent
// requests.
func (c *Client) hedged(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	ch := make(chan attemptResult, 2)
	launch := func(idx int) {
		go func() {
			resp, err := c.attempt(ctx, method, url, body)
			ch <- attemptResult{resp: resp, err: err, idx: idx}
		}()
	}
	launch(0)
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()
	launched, received := 1, 0
	var firstErr error
	for {
		select {
		case r := <-ch:
			received++
			if r.err == nil {
				if r.idx == 1 {
					c.hedgeWins.Add(1)
				}
				if received < launched {
					go func() {
						if lose := <-ch; lose.resp != nil {
							io.Copy(io.Discard, lose.resp.Body)
							lose.resp.Body.Close()
						}
					}()
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if received == launched {
				return nil, firstErr
			}
		case <-timer.C:
			if launched == 1 {
				c.hedges.Add(1)
				launch(1)
				launched = 2
			}
		}
	}
}

// do issues the request with the full resilience policy: the circuit
// breaker fails fast while the server is unreachable, the token-bucket
// retry budget bounds retries across the whole client, transport
// errors retry per retriableErr, 5xx responses retry on idempotent
// requests (honoring the server's Retry-After as a floor on the next
// backoff), and slow idempotent requests may be hedged. The response
// is the first success or non-retriable status; err is the final
// failure after the per-request retry cap or the shared budget is
// spent. A cancelled ctx stops the retry loop.
func (c *Client) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	idem := idempotent(method, url)
	var lastErr error
	var retryHint time.Duration
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.take() {
				return nil, fmt.Errorf("retry budget exhausted after %d attempts: %w", attempt, lastErr)
			}
			delay := c.backoffFor(attempt)
			// A shedding server's Retry-After is a floor, not a cap:
			// coming back sooner than it asked just gets shed again.
			if retryHint > delay {
				delay = retryHint
			}
			retryHint = 0
			c.sleep(delay)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		var resp *http.Response
		var err error
		if idem && c.hedgeDelay > 0 {
			resp, err = c.hedged(ctx, method, url, body)
		} else {
			resp, err = c.attempt(ctx, method, url, body)
		}
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrCircuitOpen) {
				// The breaker already knows the server is unreachable;
				// burning retries against it helps nobody.
				return nil, fmt.Errorf("after %d attempts: %w", attempt+1, err)
			}
			if ctx.Err() != nil || !retriableErr(method, url, err) {
				return nil, err
			}
			continue
		}
		if resp.StatusCode >= 500 && idem && attempt < c.retries {
			if hint := parseRetryAfter(resp.Header.Get("Retry-After")); hint > 0 {
				if max := 10 * time.Second; hint > max {
					hint = max
				}
				retryHint = hint
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(payload)))
			continue
		}
		if resp.StatusCode < 500 && c.budget != nil {
			c.budget.refund()
		}
		return resp, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", c.retries+1, lastErr)
}

// Do issues one API request and returns the raw response payload; path
// is relative to the base URL (e.g. "/api/v1/stats") and a non-nil
// body is sent as JSON. On a tenant-scoped client, /api/v1/... paths
// are rewritten into the tenant namespace before they leave. Non-2xx
// responses return *APIError. Typed methods below cover the whole v1
// surface; Do is the escape hatch for endpoints with free-form
// payloads (query, metrics).
func (c *Client) Do(ctx context.Context, method, path string, body any) ([]byte, error) {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = b
	}
	resp, err := c.do(ctx, method, c.base+c.scopePath(path), payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, apiError(resp, out)
	}
	return out, nil
}

// apiError builds the *APIError for a non-2xx response, decoding the
// server's envelope when present.
func apiError(resp *http.Response, body []byte) *APIError {
	e := &APIError{
		StatusCode:    resp.StatusCode,
		Status:        resp.Status,
		Message:       strings.TrimSpace(string(body)),
		RetryAfter:    parseRetryAfter(resp.Header.Get("Retry-After")),
		Primary:       resp.Header.Get("X-Crowdd-Primary"),
		ShardOwner:    -1,
		ShardOwnerURL: resp.Header.Get("X-Crowdd-Shard-Owner-URL"),
	}
	if v := resp.Header.Get("X-Crowdd-Shard-Owner"); v != "" {
		if owner, err := strconv.Atoi(v); err == nil {
			e.ShardOwner = owner
		}
	}
	if v := resp.Header.Get("X-Crowdd-Fencing-Epoch"); v != "" {
		if epoch, err := strconv.ParseUint(v, 10, 64); err == nil {
			e.FencingEpoch = epoch
		}
	}
	var env crowddb.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
	}
	return e
}

// parseRetryAfter decodes a Retry-After header in either RFC form —
// delta-seconds or an HTTP date — into a non-negative duration; zero
// means absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// get decodes a GET response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	b, err := c.Do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// post sends body and, when out is non-nil, decodes the response.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	b, err := c.Do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

// SubmitTask submits one task (POST /api/v1/tasks); k ≤ 0 selects the
// server's default crowd size.
func (c *Client) SubmitTask(ctx context.Context, text string, k int) (crowddb.SubmitResponse, error) {
	var out crowddb.SubmitResponse
	err := c.post(ctx, "/api/v1/tasks", crowddb.SubmitRequest{Text: text, K: k}, &out)
	return out, err
}

// SubmitBatch submits a whole batch in one round trip
// (POST /api/v1/tasks:batch) and returns one result per task, in
// request order.
func (c *Client) SubmitBatch(ctx context.Context, tasks []crowddb.SubmitRequest) ([]crowddb.SubmitResponse, error) {
	var out crowddb.BatchSubmitResponse
	err := c.post(ctx, "/api/v1/tasks:batch", crowddb.BatchSubmitRequest{Tasks: tasks}, &out)
	return out.Results, err
}

// Selections ranks crowds for a batch of task texts without storing
// anything (POST /api/v1/selections) — the pure read that keeps
// answering while the server is in degraded read-only mode. It is
// idempotent, so the client retries it on any transport failure and
// hedges it when HedgeDelay is set.
func (c *Client) Selections(ctx context.Context, tasks []crowddb.SubmitRequest) (crowddb.SelectionsResponse, error) {
	var out crowddb.SelectionsResponse
	err := c.post(ctx, "/api/v1/selections", crowddb.BatchSubmitRequest{Tasks: tasks}, &out)
	return out, err
}

// SelectionsScored is Selections with include_scores set: each result
// carries the workers' Eq. 1 scores, parallel to the ranking. Scored
// selections are the per-shard leg of scatter-gather — scores are what
// make per-shard top-k lists mergeable.
func (c *Client) SelectionsScored(ctx context.Context, tasks []crowddb.SubmitRequest) (crowddb.SelectionsResponse, error) {
	var out crowddb.SelectionsResponse
	err := c.post(ctx, "/api/v1/selections", crowddb.BatchSubmitRequest{Tasks: tasks, IncludeScores: true}, &out)
	return out, err
}

// SkillFeedback folds feedback scores into the posteriors of workers
// this server owns, without touching a task row
// (POST /api/v1/skills:feedback) — the cross-shard red path. A server
// that does not own one of the scored workers refuses with 421
// wrong_shard and an owner hint. forwardOf >= 0 keys the request to
// the home-shard task it forwards, making it idempotent at the owner:
// retrying a failed leg cannot double-fold a posterior. forwardOf < 0
// sends unkeyed model-only feedback.
func (c *Client) SkillFeedback(ctx context.Context, forwardOf int, taskText string, scores map[int]float64) error {
	wire := make(map[string]float64, len(scores))
	for w, s := range scores {
		wire[strconv.Itoa(w)] = s
	}
	body := map[string]any{"text": taskText, "scores": wire}
	if forwardOf >= 0 {
		body["task"] = forwardOf
	}
	return c.post(ctx, "/api/v1/skills:feedback", body, nil)
}

// Topology fetches the server's live fleet layout
// (GET /api/v1/topology). Every node serves it, replicas included.
func (c *Client) Topology(ctx context.Context) (crowddb.Topology, error) {
	var out crowddb.Topology
	err := c.get(ctx, "/api/v1/topology", &out)
	return out, err
}

// PushTopology installs a new fleet layout on the server
// (POST /api/v1/topology). A document whose epoch is older than the
// server's current one is refused with 409 stale_epoch.
func (c *Client) PushTopology(ctx context.Context, doc crowddb.Topology) (crowddb.Topology, error) {
	var out crowddb.Topology
	err := c.post(ctx, "/api/v1/topology", doc, &out)
	return out, err
}

// GetTask fetches a stored task (GET /api/v1/tasks/{id}).
func (c *Client) GetTask(ctx context.Context, id int) (crowddb.TaskRecord, error) {
	var out crowddb.TaskRecord
	err := c.get(ctx, "/api/v1/tasks/"+strconv.Itoa(id), &out)
	return out, err
}

// Answer records one worker's answer
// (POST /api/v1/tasks/{id}/answers).
func (c *Client) Answer(ctx context.Context, taskID, workerID int, answer string) error {
	return c.post(ctx, fmt.Sprintf("/api/v1/tasks/%d/answers", taskID),
		map[string]any{"worker": workerID, "answer": answer}, nil)
}

// Feedback resolves a task with per-worker scores
// (POST /api/v1/tasks/{id}/feedback) and returns the resolved record.
func (c *Client) Feedback(ctx context.Context, taskID int, scores map[int]float64) (crowddb.TaskRecord, error) {
	wire := make(map[string]float64, len(scores))
	for w, s := range scores {
		wire[strconv.Itoa(w)] = s
	}
	var out crowddb.TaskRecord
	err := c.post(ctx, fmt.Sprintf("/api/v1/tasks/%d/feedback", taskID),
		map[string]any{"scores": wire}, &out)
	return out, err
}

// GetWorker fetches a worker row (GET /api/v1/workers/{id}).
func (c *Client) GetWorker(ctx context.Context, id int) (crowddb.Worker, error) {
	var out crowddb.Worker
	err := c.get(ctx, "/api/v1/workers/"+strconv.Itoa(id), &out)
	return out, err
}

// SetPresence flips a worker's online flag
// (POST /api/v1/workers/{id}/presence).
func (c *Client) SetPresence(ctx context.Context, id int, online bool) error {
	return c.post(ctx, fmt.Sprintf("/api/v1/workers/%d/presence", id),
		map[string]any{"online": online}, nil)
}

// Stats fetches the crowd database counters (GET /api/v1/stats).
func (c *Client) Stats(ctx context.Context) (crowddb.StatsResponse, error) {
	var out crowddb.StatsResponse
	err := c.get(ctx, "/api/v1/stats", &out)
	return out, err
}

// Query runs one crowdql statement (POST /api/v1/query) and returns
// the raw JSON result.
func (c *Client) Query(ctx context.Context, q string) (json.RawMessage, error) {
	return c.Do(ctx, http.MethodPost, "/api/v1/query", map[string]string{"q": q})
}

// MetricsRaw fetches the metrics snapshot (GET /api/v1/metrics) as raw
// JSON.
func (c *Client) MetricsRaw(ctx context.Context) (json.RawMessage, error) {
	return c.Do(ctx, http.MethodGet, "/api/v1/metrics", nil)
}

// Ready reports nil once GET /readyz answers 200 — the readiness probe
// for scripts that wait out boot-time recovery.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.Do(ctx, http.MethodGet, "/readyz", nil)
	return err
}

// ReadyStatus fetches the full readiness payload (GET /readyz),
// including the server's replication role and lag when it reports
// them. Unlike Ready it decodes the body, so operators and the Multi
// client can tell a primary from a replica.
func (c *Client) ReadyStatus(ctx context.Context) (crowddb.ReadyzResponse, error) {
	var out crowddb.ReadyzResponse
	err := c.get(ctx, "/readyz", &out)
	return out, err
}

// Digest fetches the node's integrity digest cut
// (GET /api/v1/digest): the combined state fingerprint at the node's
// current applied position. Two nodes of the same tenant at the same
// seq must return the same digest; `crowdctl verify` sweeps a fleet
// with it.
func (c *Client) Digest(ctx context.Context) (crowddb.DigestCut, error) {
	var out crowddb.DigestCut
	err := c.get(ctx, "/api/v1/digest", &out)
	return out, err
}

// Promote asks the server to become the primary
// (POST /api/v1/replication/promote): a replica seals its stream,
// replays the journal to its tail, and flips roles; a server that is
// already primary answers idempotently. The returned status reflects
// the post-promotion state.
func (c *Client) Promote(ctx context.Context) (crowddb.ReplicationStatus, error) {
	var out crowddb.ReplicationStatus
	err := c.post(ctx, "/api/v1/replication/promote", nil, &out)
	return out, err
}

// FenceNode delivers a fence order (POST /api/v1/replication/fence):
// epoch exists for history, newPrimary (optional) is where writes go
// now. A node whose own epoch is lower seals itself; the response is
// its resulting fence status, so the caller checks Fencing.Sealed and
// Fencing.Observed rather than inferring from the status code.
func (c *Client) FenceNode(ctx context.Context, history string, epoch uint64, newPrimary string) (crowddb.FenceResponse, error) {
	var out crowddb.FenceResponse
	err := c.post(ctx, "/api/v1/replication/fence", crowddb.FenceRequest{
		History: history, Epoch: epoch, NewPrimary: newPrimary,
	}, &out)
	return out, err
}

// RenewLease renews the supervisor's mutation lease
// (POST /api/v1/replication/lease). The first renewal arms the lease:
// from then on the node seals itself whenever the lease lapses, so a
// primary that loses its supervisor stops acking before the
// supervisor promotes a successor. A node already deposed by epoch
// refuses with 409 fenced.
func (c *Client) RenewLease(ctx context.Context, holder string, ttl time.Duration) (crowddb.ReadyzResponse, error) {
	var out crowddb.ReadyzResponse
	err := c.post(ctx, "/api/v1/replication/lease", crowddb.LeaseRequest{
		Holder: holder, TTLMs: ttl.Milliseconds(),
	}, &out)
	return out, err
}

// SealLease steps the node down (POST /api/v1/replication/lease with
// seal set): its lease is set already-lapsed, so mutations refuse 409
// fenced immediately — and reversibly, since a plain RenewLease
// un-seals it. The drain handoff seals the outgoing primary first,
// freezing its head, before verifying the successor caught up.
func (c *Client) SealLease(ctx context.Context, holder string) (crowddb.ReadyzResponse, error) {
	var out crowddb.ReadyzResponse
	err := c.post(ctx, "/api/v1/replication/lease", crowddb.LeaseRequest{
		Holder: holder, Seal: true,
	}, &out)
	return out, err
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

package crowdclient

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crowdselect/internal/crowddb"
	"crowdselect/internal/rank"
)

// Router is the shard-aware front door to a horizontally-partitioned
// crowdd fleet. It holds one Multi (primary + replicas) per shard and
// routes by resource ownership:
//
//   - Selections scatter to every shard (each shard ranks only the
//     workers it owns, with scores) and gather by merging the
//     per-shard top-k lists — score descending, id ascending on ties —
//     which is bitwise-identical to a single node ranking the full
//     roster, because Eq. 1 scores live in one shared latent space.
//     Shards that are entirely unreachable are skipped: selections
//     degrade to the surviving shards' candidates instead of failing.
//   - Task reads and mutations (get, answer, feedback) go to the
//     task's home shard, identified by id mod count — shards mint
//     strided task ids precisely so the id carries its owner.
//   - Worker presence goes to the worker's owner under the consistent-
//     hash ring shared with the servers.
//   - Feedback resolves at the home shard, then forwards each foreign
//     answerer's score to that worker's owner shard over
//     skills:feedback, so every posterior lands exactly once.
//
// The Router carries an epoch-versioned Topology. Any 421 wrong_shard
// refusal triggers a refresh-and-retry: the fleet layout is re-fetched
// (highest epoch wins) and the call re-routed once. It is safe for
// concurrent use.
type Router struct {
	opts  Options
	seeds []string

	mu     sync.RWMutex
	topo   crowddb.Topology
	shards []*Multi

	rrHome    atomic.Int64 // round-robin cursor for batch home shards
	refreshes atomic.Int64
	partials  atomic.Int64 // scatter legs skipped because a shard was down
}

// NewRouter discovers the fleet layout from the seed URLs (any node of
// any shard serves GET /api/v1/topology, replicas included) and builds
// one Multi per shard from the discovered topology.
func NewRouter(ctx context.Context, seeds []string, opts Options) (*Router, error) {
	if len(seeds) == 0 {
		return nil, errors.New("crowdclient: NewRouter needs at least one seed URL")
	}
	r := &Router{opts: opts, seeds: append([]string(nil), seeds...)}
	var lastErr error
	for _, s := range seeds {
		doc, err := New(s, opts).Topology(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if err := r.adopt(doc); err != nil {
			lastErr = err
			continue
		}
		return r, nil
	}
	return nil, fmt.Errorf("crowdclient: no seed served a topology: %w", lastErr)
}

// adopt installs doc as the Router's layout and rebuilds the per-shard
// Multis. The caller must not hold r.mu.
func (r *Router) adopt(doc crowddb.Topology) error {
	if err := doc.Validate(); err != nil {
		return err
	}
	shards := make([]*Multi, doc.Count)
	for i, sh := range doc.Shards {
		endpoints := append([]string{sh.URL}, sh.Replicas...)
		m, err := NewMulti(endpoints, r.opts)
		if err != nil {
			return err
		}
		shards[i] = m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.topo.Count != 0 && doc.Epoch <= r.topo.Epoch {
		return nil // keep the layout we already trust
	}
	r.topo = doc
	r.shards = shards
	return nil
}

// Refresh re-fetches the fleet layout from every known endpoint and
// adopts the highest-epoch document found. Called automatically on
// wrong_shard refusals; callers may also invoke it after pushing a new
// topology elsewhere.
func (r *Router) Refresh(ctx context.Context) error {
	r.refreshes.Add(1)
	var (
		best  crowddb.Topology
		found bool
		last  error
	)
	for _, m := range r.snapshotShards() {
		doc, err := m.Topology(ctx)
		if err != nil {
			last = err
			continue
		}
		if !found || doc.Epoch > best.Epoch {
			best, found = doc, true
		}
	}
	if !found {
		for _, s := range r.seeds {
			doc, err := New(s, r.opts).Topology(ctx)
			if err != nil {
				last = err
				continue
			}
			if !found || doc.Epoch > best.Epoch {
				best, found = doc, true
			}
		}
	}
	if !found {
		return fmt.Errorf("crowdclient: topology refresh failed on every endpoint: %w", last)
	}
	return r.adopt(best)
}

// PushTopology installs doc on every endpoint of every shard (primaries
// and replicas — replicas serve discovery too) and adopts it locally.
// Per-endpoint failures are joined, not fatal: a partially-pushed epoch
// converges as routers refresh.
func (r *Router) PushTopology(ctx context.Context, doc crowddb.Topology) error {
	if err := doc.Validate(); err != nil {
		return err
	}
	var errs []error
	for _, m := range r.snapshotShards() {
		for i := range m.Endpoints() {
			if _, err := m.Client(i).PushTopology(ctx, doc); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", m.Endpoints()[i], err))
			}
		}
	}
	if err := r.adopt(doc); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// ForTenant derives a Router view whose every call is scoped to the
// named tenant. The view trusts the same topology the parent trusts
// right now (tenants share one fleet layout) and shares each shard's
// believed-primary hint, but refreshes independently afterwards. Pass
// "default" (or "") to address the un-prefixed namespace.
func (r *Router) ForTenant(name string) *Router {
	opts := r.opts
	opts.Tenant = name
	nr := &Router{opts: opts, seeds: append([]string(nil), r.seeds...)}
	r.mu.RLock()
	nr.topo = r.topo
	nr.shards = make([]*Multi, len(r.shards))
	for i, m := range r.shards {
		nr.shards[i] = m.ForTenant(name)
	}
	r.mu.RUnlock()
	return nr
}

// Tenant reports the namespace this Router addresses.
func (r *Router) Tenant() string {
	if t := normalizeTenant(r.opts.Tenant); t != "" {
		return t
	}
	return crowddb.DefaultTenant
}

// Topology returns the layout the Router currently trusts.
func (r *Router) Topology() crowddb.Topology {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.topo
}

// Count returns the number of shards in the trusted layout.
func (r *Router) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.topo.Count
}

// Refreshes counts topology refreshes since construction.
func (r *Router) Refreshes() int64 { return r.refreshes.Load() }

// Partials counts scatter legs skipped because their shard was
// unreachable — nonzero means some selections were computed from a
// degraded candidate set.
func (r *Router) Partials() int64 { return r.partials.Load() }

// Shard returns the Multi for shard i (for drills and diagnostics).
func (r *Router) Shard(i int) *Multi {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[i]
}

func (r *Router) snapshotShards() []*Multi {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Multi(nil), r.shards...)
}

func (r *Router) shardForTask(id int) (*Multi, int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx := crowddb.ShardOfTask(id, r.topo.Count)
	return r.shards[idx], idx
}

func (r *Router) shardForWorker(id int) (*Multi, int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx := crowddb.ShardOfWorker(id, r.topo.Count)
	return r.shards[idx], idx
}

// wrongShardErr extracts the *APIError when err is a 421 wrong_shard
// refusal (possibly wrapped by a Multi's failover report).
func wrongShardErr(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) && ae.Code == "wrong_shard" {
		return ae
	}
	return nil
}

// rerouted runs do against the shard picked by pick; on a wrong_shard
// refusal it refreshes the topology and retries once — at the owner the
// server hinted when the hint is in range, else at pick's new answer.
func (r *Router) rerouted(ctx context.Context, pick func() (*Multi, int), do func(m *Multi) error) error {
	m, _ := pick()
	err := do(m)
	ae := wrongShardErr(err)
	if ae == nil {
		return err
	}
	if rerr := r.Refresh(ctx); rerr != nil {
		return errors.Join(err, rerr)
	}
	if ae.ShardOwner >= 0 {
		r.mu.RLock()
		inRange := ae.ShardOwner < len(r.shards)
		if inRange {
			m = r.shards[ae.ShardOwner]
		}
		r.mu.RUnlock()
		if inRange {
			return do(m)
		}
	}
	m, _ = pick()
	return do(m)
}

// scatterScored fans the selection batch to every shard and returns the
// per-shard scored responses (nil for shards that failed outright) plus
// the selector name from any successful leg.
func (r *Router) scatterScored(ctx context.Context, tasks []crowddb.SubmitRequest) ([]*crowddb.SelectionsResponse, string, error) {
	shards := r.snapshotShards()
	out := make([]*crowddb.SelectionsResponse, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, m := range shards {
		wg.Add(1)
		go func(i int, m *Multi) {
			defer wg.Done()
			resp, err := m.SelectionsScored(ctx, tasks)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			out[i] = &resp
		}(i, m)
	}
	wg.Wait()
	model, ok := "", false
	for _, resp := range out {
		if resp != nil {
			model, ok = resp.Model, true
			break
		}
	}
	if !ok {
		return nil, "", fmt.Errorf("selection failed on every shard: %w", errors.Join(errs...))
	}
	for _, err := range errs {
		if err != nil {
			r.partials.Add(1)
		}
	}
	return out, model, nil
}

// mergeScattered folds the per-shard scored responses into one global
// top-k list per task, in request order.
func mergeScattered(legs []*crowddb.SelectionsResponse, tasks []crowddb.SubmitRequest) []crowddb.SelectionResult {
	results := make([]crowddb.SelectionResult, len(tasks))
	for t := range tasks {
		var lists [][]rank.Item
		for _, leg := range legs {
			if leg == nil || t >= len(leg.Results) {
				continue
			}
			res := leg.Results[t]
			items := make([]rank.Item, len(res.Workers))
			for i, w := range res.Workers {
				items[i] = rank.Item{ID: w, Score: res.Scores[i]}
			}
			lists = append(lists, items)
		}
		merged := rank.MergeTopK(lists, tasks[t].K)
		sel := crowddb.SelectionResult{
			Workers: make([]int, len(merged)),
			Scores:  make([]float64, len(merged)),
		}
		for i, it := range merged {
			sel.Workers[i] = it.ID
			sel.Scores[i] = it.Score
		}
		results[t] = sel
	}
	return results
}

// checkExplicitK enforces the Router's one extra contract over the
// single-node API: every task must carry an explicit k. Without it,
// each shard would apply its own server-side default and the Router
// could not tell a full per-shard list from an exhausted one, so the
// truncation point of the merge would be a guess.
func checkExplicitK(tasks []crowddb.SubmitRequest) error {
	for i, t := range tasks {
		if t.K <= 0 {
			return fmt.Errorf("router requires explicit k > 0 (task %d)", i)
		}
	}
	return nil
}

// Selections ranks crowds for a batch of task texts across the whole
// fleet: scatter scored per-shard selections, gather with a rank merge.
// Results carry both workers and scores.
func (r *Router) Selections(ctx context.Context, tasks []crowddb.SubmitRequest) (crowddb.SelectionsResponse, error) {
	if err := checkExplicitK(tasks); err != nil {
		return crowddb.SelectionsResponse{}, err
	}
	legs, model, err := r.scatterScored(ctx, tasks)
	if err != nil {
		return crowddb.SelectionsResponse{}, err
	}
	return crowddb.SelectionsResponse{Results: mergeScattered(legs, tasks), Model: model}, nil
}

// SubmitBatch stores a batch of tasks on one home shard with the crowd
// preassigned from a fleet-wide scatter-gather selection. The home
// shard rotates per call; if it is down the batch moves to the next
// shard (task ids carry their minting shard, so any shard can be home).
func (r *Router) SubmitBatch(ctx context.Context, reqs []crowddb.SubmitRequest) ([]crowddb.SubmitResponse, error) {
	if err := checkExplicitK(reqs); err != nil {
		return nil, err
	}
	legs, _, err := r.scatterScored(ctx, reqs)
	if err != nil {
		return nil, err
	}
	merged := mergeScattered(legs, reqs)
	pre := make([]crowddb.SubmitRequest, len(reqs))
	for i, req := range reqs {
		if len(merged[i].Workers) == 0 {
			return nil, fmt.Errorf("no online workers for task %d", i)
		}
		pre[i] = crowddb.SubmitRequest{Text: req.Text, K: req.K, Workers: merged[i].Workers}
	}
	shards := r.snapshotShards()
	start := int(r.rrHome.Add(1)-1) % len(shards)
	if start < 0 {
		start += len(shards)
	}
	var lastErr error
	for i := 0; i < len(shards); i++ {
		home := shards[(start+i)%len(shards)]
		resp, err := home.SubmitBatch(ctx, pre)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("submit failed on every shard: %w", lastErr)
}

// SubmitTask stores one task with a fleet-wide selected crowd.
func (r *Router) SubmitTask(ctx context.Context, text string, k int) (crowddb.SubmitResponse, error) {
	resp, err := r.SubmitBatch(ctx, []crowddb.SubmitRequest{{Text: text, K: k}})
	if err != nil {
		return crowddb.SubmitResponse{}, err
	}
	return resp[0], nil
}

// GetTask fetches a task from its home shard.
func (r *Router) GetTask(ctx context.Context, id int) (crowddb.TaskRecord, error) {
	var out crowddb.TaskRecord
	err := r.rerouted(ctx,
		func() (*Multi, int) { return r.shardForTask(id) },
		func(m *Multi) error {
			var e error
			out, e = m.GetTask(ctx, id)
			return e
		})
	return out, err
}

// Answer records a worker's answer on the task's home shard.
func (r *Router) Answer(ctx context.Context, taskID, workerID int, text string) error {
	return r.rerouted(ctx,
		func() (*Multi, int) { return r.shardForTask(taskID) },
		func(m *Multi) error { return m.Answer(ctx, taskID, workerID, text) })
}

// Feedback resolves a task at its home shard, then forwards each
// foreign answerer's score to that worker's owner shard so every
// posterior update lands on exactly one owner. The home shard folds
// only the workers it owns; the forwarded legs are journaled by their
// owners, so a recovering shard rebuilds the same model. Forward-leg
// failures are joined into the returned error alongside the resolved
// record — the resolution itself is durable at that point.
//
// Feedback is idempotent, which is what closes the partial-failure
// window: the forward legs are keyed by task id and deduplicated at
// each owner, and a Feedback call that finds the task already resolved
// (a retry after a crash or a failed leg) re-forwards from the stored
// resolution instead of failing with bad-state. Callers therefore
// retry the whole call until it returns nil, and every posterior still
// folds exactly once.
func (r *Router) Feedback(ctx context.Context, taskID int, scores map[int]float64) (crowddb.TaskRecord, error) {
	var rec crowddb.TaskRecord
	_, home := r.shardForTask(taskID)
	err := r.rerouted(ctx,
		func() (*Multi, int) { return r.shardForTask(taskID) },
		func(m *Multi) error {
			var e error
			rec, e = m.Feedback(ctx, taskID, scores)
			return e
		})
	if err != nil {
		// The resolve may have committed on an earlier attempt whose
		// forwards never drained (the home shard answers bad-state
		// from then on). The stored resolution is authoritative; when
		// it exists, finish the forwarding legs instead of failing.
		stored, gerr := r.GetTask(ctx, taskID)
		if gerr != nil || stored.Status != crowddb.TaskResolved {
			return rec, err
		}
		rec = stored
	}
	count := r.Count()
	foreign := make(map[int]map[int]float64)
	for _, a := range rec.Answers {
		owner := crowddb.ShardOfWorker(a.Worker, count)
		if owner == home {
			continue
		}
		if foreign[owner] == nil {
			foreign[owner] = make(map[int]float64)
		}
		foreign[owner][a.Worker] = a.Score
	}
	owners := make([]int, 0, len(foreign))
	for o := range foreign {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	var errs []error
	for _, o := range owners {
		m := r.Shard(o)
		if ferr := m.SkillFeedback(ctx, taskID, rec.Text, foreign[o]); ferr != nil {
			errs = append(errs, fmt.Errorf("skill feedback to shard %d: %w", o, ferr))
		}
	}
	return rec, errors.Join(errs...)
}

// SetPresence flips a worker's availability on the shard that owns the
// worker.
func (r *Router) SetPresence(ctx context.Context, id int, online bool) error {
	return r.rerouted(ctx,
		func() (*Multi, int) { return r.shardForWorker(id) },
		func(m *Multi) error { return m.SetPresence(ctx, id, online) })
}

// GetWorker fetches a worker's roster entry from its owner shard (the
// owner holds the authoritative presence bit).
func (r *Router) GetWorker(ctx context.Context, id int) (crowddb.Worker, error) {
	var out crowddb.Worker
	err := r.rerouted(ctx,
		func() (*Multi, int) { return r.shardForWorker(id) },
		func(m *Multi) error {
			var e error
			out, e = m.GetWorker(ctx, id)
			return e
		})
	return out, err
}

// FleetStats returns every shard's stats, indexed by shard.
func (r *Router) FleetStats(ctx context.Context) ([]crowddb.StatsResponse, error) {
	shards := r.snapshotShards()
	out := make([]crowddb.StatsResponse, len(shards))
	var errs []error
	for i, m := range shards {
		st, err := m.Stats(ctx)
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		out[i] = st
	}
	return out, errors.Join(errs...)
}

package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
	"crowdselect/internal/faultnet"
)

// backupNode is a primary that can die and be rebooted over the same
// data directory — the unit of the disaster-recovery drill.
type backupNode struct {
	db     *crowddb.DB
	mgr    *crowddb.Manager
	cm     *core.ConcurrentModel
	cutter *crowddb.DigestCutter
	ts     *httptest.Server
	kill   func()
}

// bootBackupNode opens (or re-opens after a crash) a primary in dir
// with the backup endpoint wired, mirroring cmd/crowdd's service mode.
func bootBackupNode(t *testing.T, dir string, d *corpus.Dataset, m *core.Model) *backupNode {
	t.Helper()
	db, err := crowddb.Open(dir, crowddb.Options{Sync: crowddb.SyncAlways()})
	if err != nil {
		t.Fatal(err)
	}
	var cm *core.ConcurrentModel
	if db.Fresh() {
		cm = core.NewConcurrentModel(m)
		for i := range d.Workers {
			if _, err := db.Store().AddWorker(i, fmt.Sprintf("w%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.SaveFile(db.DatasetPath()); err != nil {
			t.Fatal(err)
		}
	} else {
		restored, err := db.LoadModel()
		if err != nil {
			t.Fatal(err)
		}
		cm = core.NewConcurrentModel(restored)
	}
	mgr, err := crowddb.NewManager(db.Store(), d.Vocab, cm, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetModelSnapshotter(cm.Save)
	db.SetQuiescer(mgr.Quiesce)
	if db.Fresh() {
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
	} else if err := db.Recover(mgr.ApplySkillFeedback); err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(mgr)
	cutter := crowddb.NewDigestCutter(db, mgr)
	srv.SetDigestProvider(cutter.Func())
	bsrc := crowddb.NewBackupSource(db, crowddb.BackupSourceOptions{Logf: t.Logf})
	bsrc.SetDigest(cutter.Func())
	srv.SetBackupSource(bsrc)
	ts := httptest.NewServer(srv)
	var once sync.Once
	kill := func() {
		once.Do(func() {
			ts.CloseClientConnections()
			ts.Close()
			db.Close()
		})
	}
	t.Cleanup(kill)
	return &backupNode{db: db, mgr: mgr, cm: cm, cutter: cutter, ts: ts, kill: kill}
}

// cutWriter passes validated archive frames through to w and fires
// cut once the byte count crosses limit — the drill's trigger for
// killing the stream at a point that is known to be mid-archive.
type cutWriter struct {
	w     io.Writer
	n     int64
	limit int64
	cut   func()
	fired bool
}

func (c *cutWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if !c.fired && c.n >= c.limit {
		c.fired = true
		c.cut()
	}
	return n, err
}

// resolveAcked pushes n tasks end to end through the client and
// records each acked id → text.
func resolveAcked(t *testing.T, multi *crowdclient.Multi, acked map[int]string, n int, tag string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("backup drill %s question %d about index maintenance", tag, i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
}

// TestChaosBackupRestoreDrill is the end-to-end disaster-recovery
// drill: live traffic, a backup stream torn mid-flight by the primary
// dying, the primary rebooted and the backup resumed from the exact
// interruption point, more traffic folded into the resumed tail, then
// a restore into an empty directory. The restored node must carry the
// source's digest at the backup seq bit for bit, hold every acked
// mutation exactly once, serve selections identical to the source's,
// and the archive must verify offline.
func TestChaosBackupRestoreDrill(t *testing.T) {
	p := corpus.Quora().Scaled(0.03)
	p.Seed = 11
	d := corpus.MustGenerate(p)
	var tasks []core.ResolvedTask
	for _, task := range d.Tasks {
		rt := core.ResolvedTask{Bag: task.Bag(d.Vocab)}
		for _, r := range task.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		tasks = append(tasks, rt)
	}
	cfg := core.NewConfig(5)
	cfg.MaxIter = 5
	m, _, err := core.Train(tasks, len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	node := bootBackupNode(t, dir, d, m)
	multi, err := crowdclient.NewMulti([]string{node.ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second, Retries: 2, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[int]string)
	resolveAcked(t, multi, acked, 6, "pre-crash")

	// Probe the archive over a clean connection and find the smallest
	// prefix that is already resumable (bootstrap fully delivered) —
	// the drill below tears the stream just past that point.
	var probe bytes.Buffer
	cleanCli := crowdclient.New(node.ts.URL, crowdclient.Options{})
	if _, err := cleanCli.Backup(context.Background(), &probe, -1, ""); err != nil {
		t.Fatalf("probe backup: %v", err)
	}
	resumableAt := func(k int) bool {
		info, _ := crowddb.CopyBackupStream(io.Discard, bytes.NewReader(probe.Bytes()[:k]))
		return info.Resumable
	}
	lo, hi := 1, probe.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if resumableAt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if !resumableAt(lo) || lo >= probe.Len() {
		t.Fatalf("no resumable prefix below the full archive (%d bytes)", probe.Len())
	}

	// The operator's backup runs through a link that dies mid-transfer
	// — the client-visible shape of the primary crashing under it. Only
	// whole validated frames land in the file, so what it holds is a
	// well-formed archive prefix with an exact resume point.
	proxy, err := faultnet.Listen(node.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	file := filepath.Join(t.TempDir(), "drill.backup")
	f, err := os.OpenFile(file, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chaosCli := crowdclient.New(proxy.URL(), crowdclient.Options{})
	// Throttle the link so the tail is still in flight, and reset every
	// proxied connection the instant the client has validated past the
	// minimal resumable prefix: the primary dies under a backup that is
	// provably mid-stream yet past its bootstrap. An RST discards
	// whatever the kernel had buffered beyond that point, so where the
	// tear lands inside the record tail is genuinely chaotic; the
	// archive prefix on disk stays valid and resumable regardless.
	proxy.Set(faultnet.Faults{BandwidthBytesPerSec: 1 << 20})
	var info crowddb.BackupStreamInfo
	torn := false
	for attempt := 0; attempt < 5 && !torn; attempt++ {
		if err := f.Truncate(0); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		cw := &cutWriter{w: f, limit: int64(lo) + 512, cut: proxy.CutActive}
		var berr error
		info, berr = chaosCli.Backup(context.Background(), cw, -1, "")
		if berr == nil || info.Complete {
			continue // the tail outran the reset; tear again
		}
		if !info.Resumable {
			t.Fatalf("stream torn past the bootstrap yet not resumable: %+v: %v", info, berr)
		}
		torn = true
	}
	if !torn {
		t.Fatalf("the reset never tore the stream mid-flight (last info %+v)", info)
	}
	if st := proxy.Stats(); st.Resets == 0 {
		t.Fatal("the proxy never tore the stream; the drill proved nothing")
	}

	// The primary dies for real, reboots over its own directory, and
	// serves more acked traffic before the operator resumes.
	node.kill()
	node2 := bootBackupNode(t, dir, d, m)
	multi2, err := crowdclient.NewMulti([]string{node2.ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second, Retries: 2, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	resolveAcked(t, multi2, acked, 4, "post-reboot")

	// Resume: append the continuation segment at the torn file's exact
	// seq. History survives the crash (it is stamped in the sidecar),
	// so the segments chain.
	resumeCli := crowdclient.New(node2.ts.URL, crowdclient.Options{})
	tail, err := resumeCli.Backup(context.Background(), f, info.LastSeq, info.Manifest.History)
	if err != nil {
		t.Fatalf("resumed backup: %v", err)
	}
	if !tail.Complete {
		t.Fatalf("resumed backup still incomplete: %+v", tail)
	}
	backupSeq := tail.Manifest.Seq
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	// Restore into an empty directory and boot the restored node the
	// way any crowdd would.
	restoreDir := filepath.Join(t.TempDir(), "restored")
	res, err := crowddb.RestoreBackup(restoreDir, []string{file}, crowddb.RestoreOptions{Logf: t.Logf})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.Seq != backupSeq || res.Digest != tail.Manifest.Digest {
		t.Fatalf("restore landed at (%d, %s), archive says (%d, %s)", res.Seq, res.Digest, backupSeq, tail.Manifest.Digest)
	}
	restored := bootBackupNode(t, restoreDir, d, m)

	// Digest equality bit for bit at the backup seq, on both sides.
	srcCut, err := node2.cutter.CutAt(backupSeq)
	if err != nil {
		t.Fatal(err)
	}
	gotCut, err := restored.cutter.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if gotCut.Seq != backupSeq || gotCut.Digest != srcCut.Digest {
		t.Fatalf("restored node at (%d, %s), source at (%d, %s)", gotCut.Seq, gotCut.Digest, backupSeq, srcCut.Digest)
	}
	if !bytes.Equal(modelBytes(t, restored.cm), modelBytes(t, node2.cm)) {
		t.Fatal("restored model diverges from the source's serialized state")
	}

	// Every acked mutation exactly once, with its exact text.
	rows := restored.db.Store().ListTasks(crowddb.TaskResolved)
	byID := make(map[int]crowddb.TaskRecord, len(rows))
	textCount := make(map[string]int, len(rows))
	for _, rec := range rows {
		byID[rec.ID] = rec
		textCount[rec.Text]++
	}
	for id, text := range acked {
		rec, ok := byID[id]
		if !ok {
			t.Fatalf("acked task %d lost in restore", id)
		}
		if rec.Text != text {
			t.Fatalf("acked task %d text = %q, want %q", id, rec.Text, text)
		}
		if textCount[text] != 1 {
			t.Fatalf("acked task %q applied %d times", text, textCount[text])
		}
	}

	// The restored node ranks exactly like the source and keeps
	// accepting work.
	selReq := []crowddb.TaskSubmission{{Text: "how are write-ahead logs truncated"}, {Text: "when does a planner choose a hash join"}}
	wantRank, err := node2.mgr.RankOnly(context.Background(), selReq)
	if err != nil {
		t.Fatal(err)
	}
	gotRank, err := restored.mgr.RankOnly(context.Background(), selReq)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(wantRank) != fmt.Sprint(gotRank) {
		t.Fatalf("restored node ranks differently:\nsource   %v\nrestored %v", wantRank, gotRank)
	}
	multi3, err := crowdclient.NewMulti([]string{restored.ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second, Retries: 2, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	resolveVia(t, context.Background(), multi3, "first question taken after the restore")

	// The same archive proves itself offline, with a full model replay.
	build := func(datasetPath string, model *core.Model, store *crowddb.Store) (*crowddb.Manager, *core.ConcurrentModel, error) {
		ld, err := corpus.LoadFile(datasetPath)
		if err != nil {
			return nil, nil, err
		}
		cm := core.NewConcurrentModel(model)
		mgr, err := crowddb.NewManager(store, ld.Vocab, cm, 2)
		if err != nil {
			return nil, nil, err
		}
		return mgr, cm, nil
	}
	rep, err := crowddb.VerifyBackup([]string{file}, crowddb.VerifyBackupOptions{Build: build})
	if err != nil {
		t.Fatalf("offline verify of the drill archive: %v", err)
	}
	if !rep.DigestVerified || !rep.ModelReplayed || rep.Seq != backupSeq {
		t.Fatalf("verify report %+v, want digest verified at seq %d", rep, backupSeq)
	}
}

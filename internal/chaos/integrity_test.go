package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
	"crowdselect/internal/faultfs"
)

// corruptModelValue flips one stored posterior digit inside an at-rest
// model checkpoint, keeping the JSON parseable: the damage survives a
// parse-validating boot and is only observable as a wrong value — the
// exact rot the digest heartbeat exists to catch.
func corruptModelValue(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	at := bytes.Index(data, []byte(`"lambda_w":[[`))
	if at < 0 {
		t.Fatalf("no lambda_w posteriors in %s", path)
	}
	for i := at + len(`"lambda_w":[[`); i < len(data); i++ {
		if c := data[i]; c >= '0' && c <= '9' {
			repl := byte('7')
			if c == '7' {
				repl = '2'
			}
			if err := faultfs.OverwriteByte(path, int64(i), repl); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no digit found after lambda_w in %s", path)
}

// TestChaosFollowerAtRestCorruptionQuarantineAndRepair is the headline
// integrity drill. A follower is stopped, one posterior digit in its
// at-rest model checkpoint is flipped (still valid JSON, so recovery
// replays it without complaint), and the follower restarts over the
// rotted state. The digest-carrying heartbeat catches the divergence
// as soon as positions match, the follower quarantines itself, forces
// a re-bootstrap through the snapshot stream, and converges back to a
// byte-identical model with every acked mutation applied exactly once.
func TestChaosFollowerAtRestCorruptionQuarantineAndRepair(t *testing.T) {
	primary := newReplPrimary(t)
	ctx := context.Background()
	multi, err := crowdclient.NewMulti([]string{primary.ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rep, _ := startFollowerDir(t, primary.ts.URL, dir)
	caughtUp := func(r *crowddb.Replica) func() bool {
		return func() bool {
			pseq, _ := primary.db.ReplicationHead()
			return r.Status().AppliedSeq == pseq
		}
	}

	// Phase 1: acked traffic lands on both nodes.
	acked := make(map[int]string)
	for i := 0; i < 6; i++ {
		text := fmt.Sprintf("integrity drill question %d about index selection", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	waitFor(t, "follower caught up before the corruption", caughtUp(rep))

	// Phase 2: stop the follower and flip a posterior digit at rest.
	gen := rep.DB().Generation()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	corruptModelValue(t, filepath.Join(dir, fmt.Sprintf("model-%08d.json", gen)))

	// Phase 3: the follower restarts over the rotted checkpoint.
	// Recovery parses it fine — nothing is locally wrong — but the
	// first digest heartbeat at matching positions exposes it.
	rep2, ts2 := startFollowerDir(t, primary.ts.URL, dir)
	waitFor(t, "divergence detected by heartbeat", func() bool {
		return rep2.Status().Divergences >= 1
	})

	// While quarantined the follower refuses promotion with the typed
	// 409; the auto-repair races this probe, so a success is accepted
	// only once the quarantine has provably lifted.
	cli := crowdclient.New(ts2.URL, crowdclient.Options{Timeout: 5 * time.Second})
	if _, err := cli.Promote(ctx); err != nil {
		var he *crowdclient.APIError
		if !errors.As(err, &he) || he.StatusCode != http.StatusConflict || he.Code != "replica_diverged" {
			t.Fatalf("promote while diverged = %v, want 409 replica_diverged", err)
		}
	} else if st := rep2.Status(); st.Diverged {
		t.Fatalf("promotion succeeded while still quarantined: %+v", st)
	} else {
		t.Fatal("promotion succeeded before the repair completed")
	}

	// Phase 4: forced re-bootstrap repairs it; more acked traffic, then
	// byte-identical convergence.
	waitFor(t, "quarantine lifted by re-bootstrap", func() bool {
		st := rep2.Status()
		return st.Repairs >= 1 && !st.Diverged
	})
	for i := 0; i < 3; i++ {
		text := fmt.Sprintf("post-repair question %d about join ordering", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	waitFor(t, "follower caught up after the repair", caughtUp(rep2))

	if !bytes.Equal(modelBytes(t, primary.cm), modelBytes(t, rep2.Model())) {
		t.Fatal("follower model not byte-identical to the primary after repair")
	}
	if got, want := rep2.DB().Store().NumTasks(), primary.db.Store().NumTasks(); got != want {
		t.Fatalf("follower has %d tasks, primary %d", got, want)
	}
	for id := range acked {
		if _, err := rep2.DB().Store().GetTask(id); err != nil {
			t.Fatalf("acked task %d missing on repaired follower: %v", id, err)
		}
	}
	wantCut, err := crowddb.NewDigestCutter(primary.db, primary.mgr).Cut()
	if err != nil {
		t.Fatal(err)
	}
	gotCut, err := rep2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if gotCut != wantCut {
		t.Fatalf("digests disagree after repair:\nprimary %+v\nfollower %+v", wantCut, gotCut)
	}
}

// TestChaosPrimaryScrubberCatchesAtRestCorruption is the scrubber
// drill: a bit flipped inside a committed WAL record on the primary is
// found by the background scrub loop, which flips the node to degraded
// read-only — mutations refuse with the typed degraded error while
// reads keep answering — before the corrupt bytes can be served or
// replicated to a new follower.
func TestChaosPrimaryScrubberCatchesAtRestCorruption(t *testing.T) {
	primary := newReplPrimary(t)
	ctx := context.Background()
	multi, err := crowdclient.NewMulti([]string{primary.ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	resolveVia(t, ctx, multi, "scrubber drill question about predicate pushdown")
	resolveVia(t, ctx, multi, "scrubber drill question about cardinality estimates")

	// Flip one payload bit in the FIRST committed record — mid-file
	// damage, unambiguously not a torn tail.
	jpath := filepath.Join(filepath.Dir(primary.db.DatasetPath()),
		fmt.Sprintf("journal-%08d.wal", primary.db.Generation()))
	if err := faultfs.FlipBit(jpath, 10, 4); err != nil {
		t.Fatal(err)
	}

	// The 25ms background scrubber finds it without any request
	// touching the damaged range.
	waitFor(t, "scrubber degraded the primary", primary.db.Degraded)
	st := primary.db.ScrubStats()
	if !st.ScrubFailed || st.ScrubFailures < 1 || st.LastError == "" {
		t.Fatalf("scrub stats after detection = %+v", st)
	}

	// Mutations refuse; reads and health keep answering, with the
	// integrity section naming the failure.
	if _, err := multi.SubmitTask(ctx, "refused while degraded", 2); err == nil {
		t.Fatal("mutation accepted on a scrub-degraded primary")
	}
	resp, err := http.Get(primary.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready crowddb.ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Integrity == nil || !ready.Integrity.ScrubFailed {
		t.Fatalf("readyz integrity = %+v, want scrub_failed", ready.Integrity)
	}
}

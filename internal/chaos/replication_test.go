package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
	"crowdselect/internal/faultnet"
)

// replRig is a full primary stack wired for replication: durable DB,
// manager, concurrent model, HTTP server with the journal stream
// endpoint exposed.
type replRig struct {
	db    *crowddb.DB
	mgr   *crowddb.Manager
	cm    *core.ConcurrentModel
	d     *corpus.Dataset
	ts    *httptest.Server
	fence *crowddb.Fence
}

// newReplPrimary boots a durable primary whose dataset is persisted
// (followers bootstrap from it) and whose server streams the journal.
func newReplPrimary(t *testing.T) *replRig {
	t.Helper()
	p := corpus.Quora().Scaled(0.03)
	p.Seed = 11
	d := corpus.MustGenerate(p)
	var tasks []core.ResolvedTask
	for _, task := range d.Tasks {
		rt := core.ResolvedTask{Bag: task.Bag(d.Vocab)}
		for _, r := range task.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		tasks = append(tasks, rt)
	}
	cfg := core.NewConfig(5)
	cfg.MaxIter = 5
	m, _, err := core.Train(tasks, len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	db, err := crowddb.Open(t.TempDir(), crowddb.Options{Sync: crowddb.SyncAlways(), ScrubInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Workers {
		if _, err := db.Store().AddWorker(i, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cm := core.NewConcurrentModel(m)
	mgr, err := crowddb.NewManager(db.Store(), d.Vocab, cm, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetModelSnapshotter(cm.Save)
	db.SetQuiescer(mgr.Quiesce)
	if err := d.SaveFile(db.DatasetPath()); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(mgr)
	srv.SetDegradedCheck(db.Degraded)
	srv.SetDurabilityStats(db.Stats)
	src := crowddb.NewReplicationSource(db, crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	cutter := crowddb.NewDigestCutter(db, mgr)
	src.SetDigest(cutter.Func())
	srv.SetDigestProvider(cutter.Func())
	srv.SetIntegrityStats(db.ScrubStats)
	srv.SetReplicationSource(src)
	srv.SetReplicationStatus(src.Status)
	fence := crowddb.NewFence(db)
	srv.SetFence(fence)
	src.SetFence(fence)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		db.Close()
	})
	return &replRig{db: db, mgr: mgr, cm: cm, d: d, ts: ts, fence: fence}
}

// startFollower runs a warm standby streaming from primaryURL, served
// read-only over httptest with promotion wired, mirroring cmd/crowdd's
// replica mode.
func startFollower(t *testing.T, primaryURL string) (*crowddb.Replica, *httptest.Server) {
	t.Helper()
	return startFollowerDir(t, primaryURL, t.TempDir())
}

// startFollowerDir is startFollower with a caller-owned data
// directory, so drills can stop a follower, damage its at-rest files,
// and restart it over the same state.
func startFollowerDir(t *testing.T, primaryURL, dir string) (*crowddb.Replica, *httptest.Server) {
	t.Helper()
	build := func(datasetPath string, model *core.Model, store *crowddb.Store) (*crowddb.Manager, *core.ConcurrentModel, error) {
		d, err := corpus.LoadFile(datasetPath)
		if err != nil {
			return nil, nil, err
		}
		cm := core.NewConcurrentModel(model)
		mgr, err := crowddb.NewManager(store, d.Vocab, cm, 2)
		if err != nil {
			return nil, nil, err
		}
		return mgr, cm, nil
	}
	rep, err := crowddb.StartReplica(crowddb.ReplicaOptions{
		Primary:          primaryURL,
		Dir:              dir,
		DB:               crowddb.Options{Sync: crowddb.SyncAlways()},
		Build:            build,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(rep.Manager())
	srv.SetRole(crowddb.RoleReplica)
	srv.SetDurabilityStats(rep.DB().Stats)
	srv.SetReplicationStatus(rep.Status)
	srv.SetPromoter(rep.Promote)
	fence := crowddb.NewFence(rep.DB())
	srv.SetFence(fence)
	// A promoted standby must be able to feed followers of its own —
	// the healed fleet re-converges by re-pointing at the winner.
	src := crowddb.NewReplicationSource(rep.DB(), crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	src.SetFence(fence)
	src.SetDigest(rep.Digest)
	srv.SetDigestProvider(rep.Digest)
	srv.SetReplicationSource(src)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		rep.Close()
	})
	return rep, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// modelBytes snapshots a concurrent model's full serialized state.
func modelBytes(t *testing.T, cm *core.ConcurrentModel) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resolveVia pushes one task end to end through the Multi client so
// the mutation path (submit, answers, feedback) exercises routing.
func resolveVia(t *testing.T, ctx context.Context, multi *crowdclient.Multi, text string) int {
	t.Helper()
	sub, err := multi.SubmitTask(ctx, text, 2)
	if err != nil {
		t.Fatalf("submit %q: %v", text, err)
	}
	scores := make(map[int]float64, len(sub.Workers))
	for i, w := range sub.Workers {
		if err := multi.Answer(ctx, sub.TaskID, w, fmt.Sprintf("answer %d", i)); err != nil {
			t.Fatalf("answer task %d: %v", sub.TaskID, err)
		}
		scores[w] = float64(1 + i%5)
	}
	if _, err := multi.Feedback(ctx, sub.TaskID, scores); err != nil {
		t.Fatalf("feedback task %d: %v", sub.TaskID, err)
	}
	return sub.TaskID
}

// TestChaosReplicationFailover is the end-to-end failover drill: a
// primary/follower pair with the replication link running through a
// faultnet proxy, live mutation traffic through the multi-endpoint
// client, a partition that the follower rides out and catches up from,
// then primary death and a verified promotion — no acked mutation
// lost or double-applied, and the promoted model byte-identical to the
// primary's last committed state.
func TestChaosReplicationFailover(t *testing.T) {
	primary := newReplPrimary(t)

	// The follower reaches the primary only through the chaos proxy.
	proxy, err := faultnet.Listen(primary.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	rep, followerTS := startFollower(t, proxy.URL())

	multi, err := crowdclient.NewMulti([]string{primary.ts.URL, followerTS.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	caughtUp := func() bool {
		pseq, _ := primary.db.ReplicationHead()
		// AppliedSeq includes the record's side effects, so model
		// comparisons after this wait see a settled follower.
		return rep.Status().AppliedSeq == pseq
	}

	// Phase 1: live traffic with the link healthy. The follower tracks
	// the primary and a caught-up follower ranks identically.
	acked := make(map[int]string)
	for i := 0; i < 12; i++ {
		text := fmt.Sprintf("failover drill question %d about query planning", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	waitFor(t, "follower caught up after phase 1", caughtUp)
	if st := rep.Status(); st.Lag == nil || st.Lag.Records != 0 {
		t.Fatalf("caught-up follower reports lag %+v", st.Lag)
	}
	// The live tail must hold on one long-lived stream through the
	// server's middleware shell — catching up via a reconnect storm
	// (stream dropped after every replay) is a regression.
	if st := rep.Status(); st.Reconnects != 0 {
		t.Fatalf("follower reconnected %d times on a healthy link; live tail is broken", st.Reconnects)
	}
	selReq := []crowddb.TaskSubmission{{Text: "how are b+ tree pages split"}, {Text: "compare hash and merge joins"}}
	wantRank, err := primary.mgr.RankOnly(ctx, selReq)
	if err != nil {
		t.Fatal(err)
	}
	gotRank, err := rep.Manager().RankOnly(ctx, selReq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRank, gotRank) {
		t.Fatalf("caught-up follower ranks differently:\nprimary %v\nfollower %v", wantRank, gotRank)
	}

	// Phase 2: partition the replication link mid-load. The primary
	// keeps acking; the follower falls behind, reconnects through the
	// healed link and catches up without a re-bootstrap.
	proxy.Set(faultnet.Faults{Blackhole: true})
	proxy.CutActive()
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf("partition-era question %d about write amplification", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	proxy.Heal()
	proxy.CutActive() // blackholed streams are swallowed; force fresh dials
	waitFor(t, "follower caught up after the partition healed", caughtUp)

	// Phase 3: quiesce writes, confirm lag zero, then kill the primary
	// and promote. Zero loss is guaranteed because promotion targets a
	// caught-up follower — the documented failover procedure.
	waitFor(t, "lag zero before failover", func() bool {
		st := rep.Status()
		return st.Lag != nil && st.Lag.Records == 0 && caughtUp()
	})
	wantModel := modelBytes(t, primary.cm)
	wantTasks := primary.db.Store().NumTasks()

	primary.ts.CloseClientConnections()
	primary.ts.Close() // the primary dies

	followerCli := crowdclient.New(followerTS.URL, crowdclient.Options{Timeout: 5 * time.Second})
	st, err := followerCli.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != crowddb.RolePrimary {
		t.Fatalf("promoted follower reports role %q", st.Role)
	}

	// Verified failover: the promoted store holds every acked mutation
	// exactly once, and the model equals the dead primary's last
	// committed posteriors byte for byte.
	store := rep.DB().Store()
	if got := store.NumTasks(); got != wantTasks {
		t.Fatalf("promoted store has %d tasks, primary had %d", got, wantTasks)
	}
	textCount := make(map[string]int)
	for _, status := range []crowddb.TaskStatus{crowddb.TaskOpen, crowddb.TaskAssigned, crowddb.TaskResolved} {
		for _, rec := range store.ListTasks(status) {
			textCount[rec.Text]++
		}
	}
	for id, text := range acked {
		switch textCount[text] {
		case 1:
		case 0:
			t.Fatalf("acked task %d (%q) lost across failover", id, text)
		default:
			t.Fatalf("acked task %d (%q) applied %d times", id, text, textCount[text])
		}
	}
	if got := modelBytes(t, rep.Model()); !bytes.Equal(got, wantModel) {
		t.Fatalf("promoted model diverges from the primary's last committed state (%d vs %d bytes)", len(got), len(wantModel))
	}

	// The new primary accepts traffic: the multi client fails over off
	// the dead endpoint and lands writes on the promoted node.
	text := "life after failover: a question about recovery points"
	id := resolveVia(t, ctx, multi, text)
	if multi.Primary() != followerTS.URL {
		t.Fatalf("multi client believes primary is %q, want %q", multi.Primary(), followerTS.URL)
	}
	if multi.Failovers() == 0 {
		t.Fatal("multi client reports no failovers after the primary died")
	}
	rec, err := multi.GetTask(ctx, id)
	if err != nil || rec.Text != text {
		t.Fatalf("post-failover task = (%+v, %v), want text %q", rec, err, text)
	}

	// Reads kept an answer available throughout: a selection against
	// the promoted model still serves.
	if _, err := multi.Selections(ctx, []crowddb.SubmitRequest{{Text: "one more selection", K: 2}}); err != nil {
		t.Fatalf("selection after failover: %v", err)
	}
}

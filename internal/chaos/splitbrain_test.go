package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
	"crowdselect/internal/faultnet"
	"crowdselect/internal/fleet"
)

// drillLog collects supervisor notices thread-safely so a goroutine
// cannot call t.Logf after the test ends; the log is dumped only on
// failure.
type drillLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *drillLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *drillLog) dump(t *testing.T) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		t.Log(line)
	}
}

// TestChaosSplitBrainFencedFailover is the headline fencing drill: an
// asymmetric partition cuts the primary off from its supervisor and
// follower while ordinary clients still reach it directly — the
// classic split-brain setup. The invariants:
//
//   - zero dual-primary acks: the old primary's lapsed lease seals it
//     (409 fenced) before the supervisor is allowed to promote, so no
//     mutation is ever acknowledged by two primaries;
//   - zero acked-mutation loss: every task acked before and during the
//     partition is in the promoted store exactly once;
//   - the promoted model is byte-identical to the deposed primary's
//     last committed state, and after the heal a follower re-pointed
//     at the winner converges byte-identically too;
//   - the supervisor's fence order, retried across the partition,
//     lands once the network heals and pins the loser at the new
//     epoch with a redirect hint.
//
// The drill runs under both partition shapes, because they fail
// differently: "requests swallowed" starves the primary of renewals
// outright, while "responses swallowed" is the nastier one — every
// renewal the supervisor counts as missed still ARRIVES and re-arms
// the lease, so the invariants only hold because the supervisor stops
// renewing a suspect primary and waits out the lease it may have
// armed.
func TestChaosSplitBrainFencedFailover(t *testing.T) {
	t.Run("requests swallowed", func(t *testing.T) {
		runSplitBrainDrill(t, faultnet.Faults{DropUpstream: true})
	})
	t.Run("responses swallowed", func(t *testing.T) {
		runSplitBrainDrill(t, faultnet.Faults{DropDownstream: true})
	})
}

func runSplitBrainDrill(t *testing.T, fault faultnet.Faults) {
	primary := newReplPrimary(t)

	// The supervisor and the follower reach the primary only through
	// the chaos proxy; the Multi client gets a direct line.
	proxy, err := faultnet.Listen(primary.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	rep, followerTS := startFollower(t, proxy.URL())

	multi, err := crowdclient.NewMulti([]string{primary.ts.URL, followerTS.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	log := &drillLog{}
	sup, err := fleet.New(fleet.Spec{Shards: []fleet.ShardFleet{{
		Shard:    0,
		Primary:  fleet.Node{Name: "p0", URL: proxy.URL()},
		Standbys: []fleet.Node{{Name: "s0", URL: followerTS.URL}},
	}}}, fleet.Options{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		SuspectAfter:  4,
		LeaseTTL:      60 * time.Millisecond, // < 4 × 25ms: sealed before promotable
		Holder:        "drill-supervisor",
		Logf:          log.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	supCtx, supCancel := context.WithCancel(ctx)
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		sup.Run(supCtx)
	}()
	t.Cleanup(func() {
		supCancel()
		<-supDone
	})
	defer func() {
		if t.Failed() {
			log.dump(t)
		}
	}()

	caughtUp := func() bool {
		pseq, _ := primary.db.ReplicationHead()
		return rep.Status().AppliedSeq == pseq
	}

	// Phase 1: live traffic under supervision. The primary comes under
	// lease, the follower tracks it to lag zero.
	acked := make(map[int]string)
	for i := 0; i < 10; i++ {
		text := fmt.Sprintf("split-brain drill question %d about isolation levels", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	waitFor(t, "primary under supervisor lease", func() bool {
		return primary.fence.Status().LeaseHolder == "drill-supervisor"
	})
	waitFor(t, "follower at lag zero before the partition", func() bool {
		st := rep.Status()
		return caughtUp() && st.Lag != nil && st.Lag.Records == 0
	})
	wantModel := modelBytes(t, primary.cm)
	wantTasks := primary.db.Store().NumTasks()

	// Phase 2: asymmetric partition. Depending on the shape, either the
	// requests toward the primary or the responses out of it are
	// swallowed — both kill the supervisor's view of the primary and
	// the replication stream, while ordinary clients still reach it.
	proxy.Set(fault)
	proxy.CutActive()

	// The lease lapses and the primary seals itself — before the
	// supervisor's miss budget can possibly run out.
	waitFor(t, "deposed primary seals on lease lapse", func() bool {
		return primary.fence.Sealed()
	})

	// Zero dual-primary acks: every direct write to the sealed primary
	// is refused with the typed 409, applied nowhere.
	direct := crowdclient.New(primary.ts.URL, crowdclient.Options{Timeout: 2 * time.Second})
	for i := 0; i < 3; i++ {
		_, err := direct.SubmitTask(ctx, fmt.Sprintf("must not be acked %d", i), 2)
		var ae *crowdclient.APIError
		if !errors.As(err, &ae) || ae.Code != "fenced" {
			t.Fatalf("write %d to sealed primary = %v, want 409 fenced", i, err)
		}
	}
	if got := primary.db.Store().NumTasks(); got != wantTasks {
		t.Fatalf("sealed primary store grew %d -> %d: a dual-primary ack", wantTasks, got)
	}

	// The supervisor waits out the miss budget and promotes the
	// follower — the only candidate, and a fully caught-up one.
	waitFor(t, "supervisor promotes the follower", func() bool {
		return sup.Status().Failovers >= 1 && rep.Status().Role == crowddb.RolePrimary
	})
	st := sup.Status()
	if got := st.Shards[0].Primary.URL; got != followerTS.URL {
		t.Fatalf("supervisor believes primary is %s, want the follower", got)
	}
	if rep.DB().FencingEpoch() != 2 {
		t.Fatalf("promoted epoch = %d, want 2", rep.DB().FencingEpoch())
	}

	// Zero acked-mutation loss at the moment of promotion: the store
	// holds every acked task exactly once, the model is byte-identical
	// to the deposed primary's last committed state.
	if got := rep.DB().Store().NumTasks(); got != wantTasks {
		t.Fatalf("promoted store has %d tasks, primary had %d", got, wantTasks)
	}
	if got := modelBytes(t, rep.Model()); !bytes.Equal(got, wantModel) {
		t.Fatalf("promoted model diverges from the deposed primary's last committed state (%d vs %d bytes)", len(got), len(wantModel))
	}

	// Client traffic continues: the Multi's write hits the sealed
	// primary, gets the typed refusal, forgets it, and lands on the
	// winner — no operator in the loop.
	for i := 0; i < 4; i++ {
		text := fmt.Sprintf("partition-era question %d routed by fencing", i)
		acked[resolveVia(t, ctx, multi, text)] = text
	}
	if multi.Primary() != followerTS.URL {
		t.Fatalf("multi client believes primary is %q, want %q", multi.Primary(), followerTS.URL)
	}
	if multi.Failovers() == 0 {
		t.Fatal("multi client reports no failovers across the partition")
	}

	// Phase 3: heal. The supervisor's retried fence order finally lands
	// on the old primary and pins it at the new epoch with the hint.
	proxy.Heal()
	waitFor(t, "fence order acknowledged after heal", func() bool {
		return sup.Status().Fences >= 1
	})
	fs := primary.fence.Status()
	if !fs.Sealed || fs.SealedBy != "epoch" || fs.Observed != 2 {
		t.Fatalf("healed old primary fence = %+v, want sealed by epoch at 2", fs)
	}
	if fs.NewPrimary != followerTS.URL {
		t.Fatalf("fence hint = %q, want %q", fs.NewPrimary, followerTS.URL)
	}
	// The hint now rides every refusal, so even a client that only
	// knows the old address is redirected.
	_, err = direct.SubmitTask(ctx, "one more refused write", 2)
	var ae *crowdclient.APIError
	if !errors.As(err, &ae) || ae.Code != "fenced" || ae.Primary != followerTS.URL {
		t.Fatalf("post-heal refusal = %v (primary hint %q), want fenced with hint", err, ae.Primary)
	}

	// Byte-identical convergence after the heal: a follower re-pointed
	// at the winner replays its way to the same model, and every acked
	// task — pre-partition and partition-era — is there exactly once.
	rep2, _ := startFollower(t, followerTS.URL)
	waitFor(t, "re-pointed follower caught up to the new primary", func() bool {
		pseq, _ := rep.DB().ReplicationHead()
		return rep2.Status().AppliedSeq == pseq && pseq > 0
	})
	if got, want := modelBytes(t, rep2.Model()), modelBytes(t, rep.Model()); !bytes.Equal(got, want) {
		t.Fatalf("healed fleet models diverge (%d vs %d bytes)", len(got), len(want))
	}
	for _, store := range []*crowddb.Store{rep.DB().Store(), rep2.DB().Store()} {
		textCount := make(map[string]int)
		for _, status := range []crowddb.TaskStatus{crowddb.TaskOpen, crowddb.TaskAssigned, crowddb.TaskResolved} {
			for _, rec := range store.ListTasks(status) {
				textCount[rec.Text]++
			}
		}
		for id, text := range acked {
			if textCount[text] != 1 {
				t.Fatalf("acked task %d (%q) applied %d times, want exactly once", id, text, textCount[text])
			}
		}
	}
}

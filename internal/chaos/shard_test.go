package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
)

// shardRig is one durable sharded primary: its own journal directory,
// its own copy of the trained model, shard identity set before the
// first journal record so replay and replication filter identically.
type shardRig struct {
	db  *crowddb.DB
	mgr *crowddb.Manager
	cm  *core.ConcurrentModel
	ts  *httptest.Server
}

// newShardFleet boots one dataset/model pair and count durable sharded
// primaries over it, topology epoch 1 installed on every node.
func newShardFleet(t *testing.T, count int) (*corpus.Dataset, []*shardRig) {
	t.Helper()
	p := corpus.Quora().Scaled(0.03)
	p.Seed = 23
	d := corpus.MustGenerate(p)
	var tasks []core.ResolvedTask
	for _, task := range d.Tasks {
		rt := core.ResolvedTask{Bag: task.Bag(d.Vocab)}
		for _, r := range task.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		tasks = append(tasks, rt)
	}
	cfg := core.NewConfig(5)
	cfg.MaxIter = 5
	trained, _, err := core.Train(tasks, len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	rigs := make([]*shardRig, count)
	doc := crowddb.Topology{Epoch: 1, Count: count}
	for i := 0; i < count; i++ {
		var buf bytes.Buffer
		if err := trained.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := core.LoadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		db, err := crowddb.Open(t.TempDir(), crowddb.Options{Sync: crowddb.SyncAlways()})
		if err != nil {
			t.Fatal(err)
		}
		for w := range d.Workers {
			if _, err := db.Store().AddWorker(w, fmt.Sprintf("w%d", w)); err != nil {
				t.Fatal(err)
			}
		}
		cm := core.NewConcurrentModel(m)
		mgr, err := crowddb.NewManager(db.Store(), d.Vocab, cm, 2)
		if err != nil {
			t.Fatal(err)
		}
		mgr.SetShard(crowddb.ShardSpec{Index: i, Count: count})
		db.SetModelSnapshotter(cm.Save)
		db.SetQuiescer(mgr.Quiesce)
		if err := d.SaveFile(db.DatasetPath()); err != nil {
			t.Fatal(err)
		}
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		srv := crowddb.NewServer(mgr)
		srv.SetDegradedCheck(db.Degraded)
		srv.SetDurabilityStats(db.Stats)
		src := crowddb.NewReplicationSource(db, crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
		srv.SetReplicationSource(src)
		srv.SetReplicationStatus(src.Status)
		ts := httptest.NewServer(srv)
		rig := &shardRig{db: db, mgr: mgr, cm: cm, ts: ts}
		rigs[i] = rig
		doc.Shards = append(doc.Shards, crowddb.ShardAddr{Index: i, URL: ts.URL})
		t.Cleanup(func() {
			ts.CloseClientConnections()
			ts.Close()
			db.Close()
		})
	}
	for i, rig := range rigs {
		setter := crowdclient.New(rig.ts.URL, crowdclient.Options{Timeout: 5 * time.Second})
		if _, err := setter.PushTopology(context.Background(), doc); err != nil {
			t.Fatalf("seed topology on shard %d: %v", i, err)
		}
	}
	return d, rigs
}

// startShardFollower runs a warm standby for one shard, applying the
// replicated journal — including cross-shard skills:feedback frames —
// under the same shard filter as its primary.
func startShardFollower(t *testing.T, primaryURL string, sp crowddb.ShardSpec) (*crowddb.Replica, *httptest.Server) {
	t.Helper()
	build := func(datasetPath string, model *core.Model, store *crowddb.Store) (*crowddb.Manager, *core.ConcurrentModel, error) {
		d, err := corpus.LoadFile(datasetPath)
		if err != nil {
			return nil, nil, err
		}
		cm := core.NewConcurrentModel(model)
		mgr, err := crowddb.NewManager(store, d.Vocab, cm, 2)
		if err != nil {
			return nil, nil, err
		}
		mgr.SetShard(sp)
		return mgr, cm, nil
	}
	rep, err := crowddb.StartReplica(crowddb.ReplicaOptions{
		Primary:          primaryURL,
		Dir:              t.TempDir(),
		DB:               crowddb.Options{Sync: crowddb.SyncAlways()},
		Build:            build,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(rep.Manager())
	srv.SetRole(crowddb.RoleReplica)
	srv.SetDurabilityStats(rep.DB().Stats)
	srv.SetReplicationStatus(rep.Status)
	srv.SetPromoter(rep.Promote)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		rep.Close()
	})
	return rep, ts
}

// resolveViaRouter drives one task end to end through the shard-aware
// Router: scatter-gather submit, answers from the assigned crowd,
// feedback with cross-shard posterior forwarding.
func resolveViaRouter(t *testing.T, ctx context.Context, r *crowdclient.Router, text string) int {
	t.Helper()
	sub, err := r.SubmitTask(ctx, text, 2)
	if err != nil {
		t.Fatalf("submit %q: %v", text, err)
	}
	scores := make(map[int]float64, len(sub.Workers))
	for i, w := range sub.Workers {
		if err := r.Answer(ctx, sub.TaskID, w, fmt.Sprintf("answer %d", i)); err != nil {
			t.Fatalf("answer task %d: %v", sub.TaskID, err)
		}
		scores[w] = float64(1 + i%5)
	}
	if _, err := r.Feedback(ctx, sub.TaskID, scores); err != nil {
		t.Fatalf("feedback task %d: %v", sub.TaskID, err)
	}
	return sub.TaskID
}

// TestChaosShardKillAndRebalance is the sharded-fleet failure drill: a
// two-shard durable fleet with a warm standby behind shard 1 takes
// Router traffic; shard 1's primary is killed mid-traffic; selections
// degrade to the surviving shard's candidates; the standby is promoted
// and a topology epoch bump re-points the fleet at it. No acked
// feedback is lost — every resolved task survives exactly once — and
// the promoted shard's model is byte-identical to the dead primary's
// last committed posteriors, proving the replicated skills:feedback
// frames were folded under the same ownership filter.
func TestChaosShardKillAndRebalance(t *testing.T) {
	d, rigs := newShardFleet(t, 2)
	_ = d
	rep, standbyTS := startShardFollower(t, rigs[1].ts.URL, crowddb.ShardSpec{Index: 1, Count: 2})

	ctx := context.Background()
	router, err := crowdclient.NewRouter(ctx, []string{rigs[0].ts.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	caughtUp := func() bool {
		pseq, _ := rigs[1].db.ReplicationHead()
		return rep.Status().AppliedSeq == pseq
	}

	// Phase 1: healthy fleet under load. Every round exercises the
	// scatter-gather submit and the cross-shard feedback forwarding.
	acked := make(map[int]string)
	for i := 0; i < 12; i++ {
		text := fmt.Sprintf("shard drill question %d about index maintenance", i)
		acked[resolveViaRouter(t, ctx, router, text)] = text
	}
	waitFor(t, "standby caught up behind shard 1", caughtUp)
	wantModel := modelBytes(t, rigs[1].cm)
	wantShard1Tasks := rigs[1].db.Store().NumTasks()

	// Phase 2: shard 1's primary dies. Selections must keep answering
	// from shard 0's candidates alone.
	rigs[1].ts.CloseClientConnections()
	rigs[1].ts.Close()
	sel, err := router.Selections(ctx, []crowddb.SubmitRequest{{Text: "query planning during an outage", K: 4}})
	if err != nil {
		t.Fatalf("selection during shard outage: %v", err)
	}
	if len(sel.Results[0].Workers) == 0 {
		t.Fatal("no survivors selected during outage")
	}
	for _, w := range sel.Results[0].Workers {
		if crowddb.ShardOfWorker(w, 2) != 0 {
			t.Errorf("worker %d from the dead shard selected during outage", w)
		}
	}
	if router.Partials() == 0 {
		t.Error("router did not count the dead scatter leg")
	}

	// Phase 3: promote the standby and bump the topology epoch so the
	// fleet re-points shard 1 at it.
	standbyCli := crowdclient.New(standbyTS.URL, crowdclient.Options{Timeout: 5 * time.Second})
	st, err := standbyCli.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != crowddb.RolePrimary {
		t.Fatalf("promoted standby reports role %q", st.Role)
	}
	doc2 := crowddb.Topology{Epoch: 2, Count: 2, Shards: []crowddb.ShardAddr{
		{Index: 0, URL: rigs[0].ts.URL},
		{Index: 1, URL: standbyTS.URL},
	}}
	for _, target := range []string{rigs[0].ts.URL, standbyTS.URL} {
		cli := crowdclient.New(target, crowdclient.Options{Timeout: 5 * time.Second})
		if _, err := cli.PushTopology(ctx, doc2); err != nil {
			t.Fatalf("push epoch 2 to %s: %v", target, err)
		}
	}
	if err := router.Refresh(ctx); err != nil {
		t.Fatalf("router refresh: %v", err)
	}
	if got := router.Topology(); got.Epoch != 2 || got.URLOf(1) != standbyTS.URL {
		t.Fatalf("router did not adopt epoch 2: %+v", got)
	}

	// Phase 4: verified rebalance. The promoted shard holds every acked
	// shard-1 task exactly once and its model matches the dead primary's
	// last committed bytes.
	if got := rep.DB().Store().NumTasks(); got != wantShard1Tasks {
		t.Fatalf("promoted shard has %d tasks, primary had %d", got, wantShard1Tasks)
	}
	if got := modelBytes(t, rep.Model()); !bytes.Equal(got, wantModel) {
		t.Fatalf("promoted shard model diverges from the dead primary's committed state (%d vs %d bytes)", len(got), len(wantModel))
	}
	textCount := make(map[string]int)
	for _, store := range []*crowddb.Store{rigs[0].db.Store(), rep.DB().Store()} {
		for _, status := range []crowddb.TaskStatus{crowddb.TaskOpen, crowddb.TaskAssigned, crowddb.TaskResolved} {
			for _, rec := range store.ListTasks(status) {
				textCount[rec.Text]++
			}
		}
	}
	for id, text := range acked {
		switch textCount[text] {
		case 1:
		case 0:
			t.Fatalf("acked task %d (%q) lost across the shard failover", id, text)
		default:
			t.Fatalf("acked task %d (%q) applied %d times", id, text, textCount[text])
		}
	}

	// Phase 5: full fleet traffic resumes through the promoted shard —
	// selections cover both shards again and new feedback lands.
	sel, err = router.Selections(ctx, []crowddb.SubmitRequest{{Text: "selection after the rebalance", K: 6}})
	if err != nil {
		t.Fatal(err)
	}
	owners := map[int]bool{}
	for _, w := range sel.Results[0].Workers {
		owners[crowddb.ShardOfWorker(w, 2)] = true
	}
	if !owners[0] || !owners[1] {
		t.Fatalf("post-rebalance selection does not span both shards: %v", sel.Results[0].Workers)
	}
	text := "life after the shard rebalance"
	id := resolveViaRouter(t, ctx, router, text)
	rec, err := router.GetTask(ctx, id)
	if err != nil || rec.Text != text {
		t.Fatalf("post-rebalance task = (%+v, %v), want text %q", rec, err, text)
	}
}

package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
)

// tenantPrimary is a primary node hosting two tenants — default and
// acme — each with its own durable DB and replication source, sharing
// one server and one node-level fence, the same shape cmd/crowdd
// builds for -tenants.
type tenantPrimary struct {
	def  *replRig
	acme struct {
		db  *crowddb.DB
		mgr *crowddb.Manager
		cm  *core.ConcurrentModel
	}
}

// newTenantPrimary extends newReplPrimary's stack with an acme tenant:
// a second durable DB stamped "acme", seeded from a clone of the
// default tenant's trained model, registered on the same server.
func newTenantPrimary(t *testing.T) (*tenantPrimary, *httptest.Server) {
	t.Helper()
	p := &tenantPrimary{def: newReplPrimary(t)}
	d := p.def.d

	db, err := crowddb.Open(t.TempDir(), crowddb.Options{Sync: crowddb.SyncAlways()})
	if err != nil {
		t.Fatal(err)
	}
	db.Store().SetTenant("acme")
	for i := range d.Workers {
		if _, err := db.Store().AddWorker(i, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.def.cm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cm := core.NewConcurrentModel(m)
	mgr, err := crowddb.NewManagerWith(crowddb.ManagerConfig{
		Store: db.Store(), Vocab: d.Vocab, Selector: cm, CrowdK: 2, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SetModelSnapshotter(cm.Save)
	db.SetQuiescer(mgr.Quiesce)
	if err := d.SaveFile(db.DatasetPath()); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	src := crowddb.NewReplicationSource(db, crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	src.SetFence(p.def.fence) // fencing is node-level; tenants share it

	// Rebuild the HTTP shell so both tenants hang off one listener —
	// newReplPrimary already started a server for the default tenant,
	// but AddTenant must happen before traffic, so serve a fresh one.
	srv := crowddb.NewServer(p.def.mgr)
	srv.SetDegradedCheck(p.def.db.Degraded)
	srv.SetDurabilityStats(p.def.db.Stats)
	defSrc := crowddb.NewReplicationSource(p.def.db, crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	srv.SetReplicationSource(defSrc)
	srv.SetReplicationStatus(defSrc.Status)
	srv.SetFence(p.def.fence)
	defSrc.SetFence(p.def.fence)
	if err := srv.AddTenant("acme", crowddb.TenantConfig{
		Manager:           mgr,
		Degraded:          db.Degraded,
		ReplicationSource: src,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		db.Close()
	})
	p.acme.db, p.acme.mgr, p.acme.cm = db, mgr, cm
	return p, ts
}

// startTenantFollower runs one warm standby per tenant — each replica
// streams its own tenant's journal from primaryURL — behind a single
// read-only server whose promoter promotes every tenant, mirroring
// cmd/crowdd's replica mode with -tenants.
func startTenantFollower(t *testing.T, primaryURL string) (def, acme *crowddb.Replica, ts *httptest.Server) {
	t.Helper()
	build := func(datasetPath string, model *core.Model, store *crowddb.Store) (*crowddb.Manager, *core.ConcurrentModel, error) {
		d, err := corpus.LoadFile(datasetPath)
		if err != nil {
			return nil, nil, err
		}
		cm := core.NewConcurrentModel(model)
		mgr, err := crowddb.NewManager(store, d.Vocab, cm, 2)
		if err != nil {
			return nil, nil, err
		}
		return mgr, cm, nil
	}
	def, err := crowddb.StartReplica(crowddb.ReplicaOptions{
		Primary:          primaryURL,
		Dir:              t.TempDir(),
		DB:               crowddb.Options{Sync: crowddb.SyncAlways()},
		Build:            build,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	acme, err = crowddb.StartReplica(crowddb.ReplicaOptions{
		Primary:          primaryURL,
		Tenant:           "acme",
		Dir:              t.TempDir(),
		DB:               crowddb.Options{Sync: crowddb.SyncAlways()},
		Build:            build,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(def.Manager())
	srv.SetRole(crowddb.RoleReplica)
	srv.SetDurabilityStats(def.DB().Stats)
	srv.SetReplicationStatus(def.Status)
	srv.SetPromoter(func(ctx context.Context) error {
		// Promote every tenant; Replica.Promote caches only success,
		// so a retry after a partial failure re-drives just the rest.
		if err := def.Promote(ctx); err != nil {
			return fmt.Errorf("tenant default: %w", err)
		}
		if err := acme.Promote(ctx); err != nil {
			return fmt.Errorf("tenant acme: %w", err)
		}
		return nil
	})
	fence := crowddb.NewFence(def.DB())
	srv.SetFence(fence)
	defSrc := crowddb.NewReplicationSource(def.DB(), crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	defSrc.SetFence(fence)
	srv.SetReplicationSource(defSrc)
	acmeSrc := crowddb.NewReplicationSource(acme.DB(), crowddb.ReplicationSourceOptions{Heartbeat: 20 * time.Millisecond})
	acmeSrc.SetFence(fence)
	if err := srv.AddTenant("acme", crowddb.TenantConfig{
		Manager:           acme.Manager(),
		ReplicationSource: acmeSrc,
	}); err != nil {
		t.Fatal(err)
	}
	ts = httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		def.Close()
		acme.Close()
	})
	return def, acme, ts
}

// TestChaosTenantFailover is the two-tenant failover drill: a primary
// hosting default and acme crowds with live interleaved traffic on
// both, per-tenant replication to one follower node, primary death,
// and a single promotion that flips every tenant — after which each
// tenant's store and posteriors on the new primary are byte-identical
// to the dead primary's last committed state, and both tenants keep
// accepting writes without bleeding into each other.
func TestChaosTenantFailover(t *testing.T) {
	primary, primaryTS := newTenantPrimary(t)
	defRep, acmeRep, followerTS := startTenantFollower(t, primaryTS.URL)

	multi, err := crowdclient.NewMulti([]string{primaryTS.URL, followerTS.URL}, crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	acmeMulti := multi.ForTenant("acme")
	ctx := context.Background()

	caughtUp := func() bool {
		dseq, _ := primary.def.db.ReplicationHead()
		aseq, _ := primary.acme.db.ReplicationHead()
		return defRep.Status().AppliedSeq == dseq && acmeRep.Status().AppliedSeq == aseq
	}

	// Interleaved load on both tenants while both streams are live.
	ackedDef := make(map[int]string)
	ackedAcme := make(map[int]string)
	for i := 0; i < 10; i++ {
		dt := fmt.Sprintf("default drill question %d about query planning", i)
		ackedDef[resolveVia(t, ctx, multi, dt)] = dt
		at := fmt.Sprintf("acme drill question %d about vacuum scheduling", i)
		ackedAcme[resolveVia(t, ctx, acmeMulti, at)] = at
	}
	waitFor(t, "both tenants caught up under load", caughtUp)

	// Quiesce, snapshot the primary's committed state per tenant, then
	// kill it and promote the follower — one Promote call flips both.
	wantDefModel := modelBytes(t, primary.def.cm)
	wantAcmeModel := modelBytes(t, primary.acme.cm)
	wantDefTasks := primary.def.db.Store().NumTasks()
	wantAcmeTasks := primary.acme.db.Store().NumTasks()

	primaryTS.CloseClientConnections()
	primaryTS.Close() // the primary dies with both tenants on it

	followerCli := crowdclient.New(followerTS.URL, crowdclient.Options{Timeout: 5 * time.Second})
	st, err := followerCli.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != crowddb.RolePrimary {
		t.Fatalf("promoted follower reports role %q", st.Role)
	}

	// Byte-identical per tenant: models and task counts match the dead
	// primary exactly, and neither tenant absorbed the other's tasks.
	if got := modelBytes(t, defRep.Model()); !bytes.Equal(got, wantDefModel) {
		t.Fatal("promoted default-tenant model diverges from the primary's last committed state")
	}
	if got := modelBytes(t, acmeRep.Model()); !bytes.Equal(got, wantAcmeModel) {
		t.Fatal("promoted acme-tenant model diverges from the primary's last committed state")
	}
	if got := defRep.DB().Store().NumTasks(); got != wantDefTasks {
		t.Fatalf("promoted default store has %d tasks, primary had %d", got, wantDefTasks)
	}
	if got := acmeRep.DB().Store().NumTasks(); got != wantAcmeTasks {
		t.Fatalf("promoted acme store has %d tasks, primary had %d", got, wantAcmeTasks)
	}
	defTexts := make(map[string]bool, len(ackedDef))
	for _, text := range ackedDef {
		defTexts[text] = true
	}
	for _, rec := range acmeRep.DB().Store().ListTasks(crowddb.TaskResolved) {
		if defTexts[rec.Text] {
			t.Fatalf("default-tenant task %q leaked into acme's replica", rec.Text)
		}
	}
	acmeTexts := make(map[string]bool, len(ackedAcme))
	for _, text := range ackedAcme {
		acmeTexts[text] = true
	}
	for _, rec := range defRep.DB().Store().ListTasks(crowddb.TaskResolved) {
		if acmeTexts[rec.Text] {
			t.Fatalf("acme-tenant task %q leaked into the default replica", rec.Text)
		}
	}

	// Both tenants accept traffic on the new primary, still isolated:
	// the task lands in its own tenant and 404s in the other.
	defText := "life after failover: default tenant resumes"
	defID := resolveVia(t, ctx, multi, defText)
	acmeText := "life after failover: acme tenant resumes"
	acmeID := resolveVia(t, ctx, acmeMulti, acmeText)
	if rec, err := multi.GetTask(ctx, defID); err != nil || rec.Text != defText {
		t.Fatalf("post-failover default task = (%+v, %v), want text %q", rec, err, defText)
	}
	if rec, err := acmeMulti.GetTask(ctx, acmeID); err != nil || rec.Text != acmeText {
		t.Fatalf("post-failover acme task = (%+v, %v), want text %q", rec, err, acmeText)
	}
	if rec, err := multi.GetTask(ctx, acmeID); err == nil && rec.Text == acmeText {
		t.Fatalf("acme task %d visible through the default tenant after failover", acmeID)
	}
}

package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/crowdclient"
	"crowdselect/internal/crowddb"
	"crowdselect/internal/faultfs"
	"crowdselect/internal/faultnet"
)

// rig is one full crowdd stack: durable DB, manager, HTTP server.
type rig struct {
	db  *crowddb.DB
	mgr *crowddb.Manager
	ts  *httptest.Server
}

// newRig boots the stack in a temp data directory with the given
// durability options and serves it over httptest.
func newRig(t *testing.T, opts crowddb.Options) *rig {
	t.Helper()
	p := corpus.Quora().Scaled(0.03)
	p.Seed = 11
	d := corpus.MustGenerate(p)
	var tasks []core.ResolvedTask
	for _, task := range d.Tasks {
		rt := core.ResolvedTask{Bag: task.Bag(d.Vocab)}
		for _, r := range task.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		tasks = append(tasks, rt)
	}
	cfg := core.NewConfig(5)
	cfg.MaxIter = 5
	m, _, err := core.Train(tasks, len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	db, err := crowddb.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Workers {
		if _, err := db.Store().AddWorker(i, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cm := core.NewConcurrentModel(m)
	mgr, err := crowddb.NewManager(db.Store(), d.Vocab, cm, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetModelSnapshotter(cm.Save)
	db.SetQuiescer(mgr.Quiesce)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	srv := crowddb.NewServer(mgr)
	srv.SetDegradedCheck(db.Degraded)
	srv.SetDurabilityStats(db.Stats)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		db.Close()
	})
	return &rig{db: db, mgr: mgr, ts: ts}
}

// allTasks gathers every task row regardless of status.
func (r *rig) allTasks() []crowddb.TaskRecord {
	var all []crowddb.TaskRecord
	for _, st := range []crowddb.TaskStatus{crowddb.TaskOpen, crowddb.TaskAssigned, crowddb.TaskResolved} {
		all = append(all, r.db.Store().ListTasks(st)...)
	}
	return all
}

// TestChaosDegradedReadOnly drives the disk-failure story end to end
// through a real client: a faultfs byte budget kills the journal
// mid-run, mutations turn into 503 degraded_read_only, selections keep
// answering exactly what they answered before the fault, and once the
// "disk" heals the server compacts itself back to writable.
func TestChaosDegradedReadOnly(t *testing.T) {
	var healed atomic.Bool
	budget := faultfs.NewBudget(2048) // enough for bootstrap + a few acked mutations
	opts := crowddb.Options{
		Sync: crowddb.SyncAlways(),
		OpenJournalFile: func(path string) (crowddb.JournalFile, error) {
			if healed.Load() {
				return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			}
			return faultfs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644, budget)
		},
		Probe: func() error {
			if healed.Load() {
				return nil
			}
			return errors.New("chaos: disk still gone")
		},
		ProbeInterval: 5 * time.Millisecond,
	}
	r := newRig(t, opts)
	cli := crowdclient.New(r.ts.URL, crowdclient.Options{
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	ctx := context.Background()

	// Baseline selection before any fault.
	selReq := []crowddb.SubmitRequest{{Text: "how do b+ trees differ from b trees", K: 2}}
	before, err := cli.Selections(ctx, selReq)
	if err != nil {
		t.Fatal(err)
	}

	// Submit until the journal budget trips. Everything acked before the
	// trip must survive; the tripping request must fail with the stable
	// degraded code, never a silent half-apply that got acked.
	acked := make(map[int]string)
	var faultErr *crowdclient.APIError
	for i := 0; i < 200; i++ {
		text := fmt.Sprintf("chaos degraded question %d about join ordering", i)
		sub, err := cli.SubmitTask(ctx, text, 2)
		if err != nil {
			if !errors.As(err, &faultErr) {
				t.Fatalf("submission %d failed with %v, want *APIError", i, err)
			}
			break
		}
		acked[sub.TaskID] = text
	}
	if faultErr == nil {
		t.Fatal("journal budget never tripped; raise the submission count or lower the budget")
	}
	if faultErr.StatusCode != 503 || faultErr.Code != "degraded_read_only" {
		t.Fatalf("tripping request = %d [%s], want 503 [degraded_read_only]", faultErr.StatusCode, faultErr.Code)
	}
	if len(acked) == 0 {
		t.Fatal("no mutation acked before the fault; budget too small to prove anything")
	}
	if !r.db.Degraded() {
		t.Fatal("DB not degraded after the journal failure")
	}

	// Mutations now fail fast at the gate with the same stable code.
	var apiErr *crowdclient.APIError
	if _, err := cli.SubmitTask(ctx, "sealed out", 2); !errors.As(err, &apiErr) || apiErr.Code != "degraded_read_only" {
		t.Fatalf("mutation while degraded = %v, want degraded_read_only", err)
	}
	// Selections keep answering, with the pre-fault model.
	during, err := cli.Selections(ctx, selReq)
	if err != nil {
		t.Fatalf("selection while degraded: %v", err)
	}
	if !reflect.DeepEqual(before, during) {
		t.Fatalf("degraded selection = %+v, want pre-fault %+v", during, before)
	}
	// Reads of acked state still answer too.
	for id, text := range acked {
		rec, err := cli.GetTask(ctx, id)
		if err != nil {
			t.Fatalf("acked task %d unreadable while degraded: %v", id, err)
		}
		if rec.Text != text {
			t.Fatalf("task %d text = %q, want %q", id, rec.Text, text)
		}
	}
	// The server still reports ready: selections serve.
	if err := cli.Ready(ctx); err != nil {
		t.Fatalf("readyz while degraded: %v", err)
	}

	// Disk comes back: the probe loop heals by compaction and unseals.
	healed.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for r.db.Degraded() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.db.Degraded() {
		t.Fatal("degraded mode never cleared after the disk healed")
	}
	stats := r.db.Stats()
	if stats.DegradedEnters != 1 || stats.DegradedExits != 1 {
		t.Fatalf("degraded transitions = %d in, %d out; want 1, 1", stats.DegradedEnters, stats.DegradedExits)
	}
	// Mutations flow again, and nothing acked was lost across the whole
	// episode.
	sub, err := cli.SubmitTask(ctx, "post-heal question about hash joins", 2)
	if err != nil {
		t.Fatalf("mutation after heal: %v", err)
	}
	acked[sub.TaskID] = "post-heal question about hash joins"
	for id, text := range acked {
		rec, err := cli.GetTask(ctx, id)
		if err != nil || rec.Text != text {
			t.Fatalf("acked task %d after heal = (%v, %v), want text %q", id, rec, err, text)
		}
	}
	after, err := cli.Selections(ctx, selReq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("post-heal selection = %+v, want %+v (no feedback happened)", after, before)
	}
}

// TestChaosResetsNoAckedMutationLost hammers mutations through a proxy
// that keeps resetting connections and asserts the two halves of the
// mutation contract: every acknowledged submission is durably present
// with the right content, and no submission was applied twice (the
// client never replays a POST that may have reached the server).
func TestChaosResetsNoAckedMutationLost(t *testing.T) {
	r := newRig(t, crowddb.Options{Sync: crowddb.SyncAlways()})
	proxy, err := faultnet.Listen(r.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	cli := crowdclient.New(proxy.URL(), crowdclient.Options{
		Timeout: 2 * time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
	ctx := context.Background()

	// Connections die after a small per-connection byte budget, so the
	// fault lands at different points of different requests: during the
	// request, between request and response, during the response.
	proxy.Set(faultnet.Faults{ResetAfterBytes: 700})
	acked := make(map[int]string)
	var transportErrs int
	for i := 0; i < 60; i++ {
		if i%20 == 10 {
			proxy.CutActive() // also kill whatever is pooled mid-flight
		}
		text := fmt.Sprintf("chaos reset question %d about secondary indexes", i)
		sub, err := cli.SubmitTask(ctx, text, 2)
		if err != nil {
			transportErrs++
			continue
		}
		acked[sub.TaskID] = text
	}
	if transportErrs == 0 {
		t.Fatal("the reset plan never bit; the test proved nothing")
	}
	if len(acked) == 0 {
		t.Fatal("nothing was acked through the chaos; the test proved nothing")
	}
	proxy.Heal()

	// Every acked submission exists with its exact text.
	rows := r.allTasks()
	byID := make(map[int]crowddb.TaskRecord, len(rows))
	textCount := make(map[string]int, len(rows))
	for _, rec := range rows {
		byID[rec.ID] = rec
		textCount[rec.Text]++
	}
	for id, text := range acked {
		rec, ok := byID[id]
		if !ok {
			t.Fatalf("acked task %d lost", id)
		}
		if rec.Text != text {
			t.Fatalf("acked task %d text = %q, want %q", id, rec.Text, text)
		}
	}
	// No double-apply: every submitted text — acked or not — appears at
	// most once. (Un-acked submissions may have reached the server; they
	// must still not be duplicated.)
	for text, n := range textCount {
		if n > 1 {
			t.Fatalf("text %q applied %d times", text, n)
		}
	}
	if stats := proxy.Stats(); stats.Resets == 0 {
		t.Error("proxy reports no resets; fault plan was not exercised")
	}
}

// TestChaosBreakerUnderBlackhole: when the network blackholes, the
// client's breaker opens after a handful of timeouts and turns the
// remaining calls into instant local failures — no new connections —
// then recovers on its own once the network heals.
func TestChaosBreakerUnderBlackhole(t *testing.T) {
	r := newRig(t, crowddb.Options{Sync: crowddb.SyncAlways()})
	proxy, err := faultnet.Listen(r.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	cli := crowdclient.New(proxy.URL(), crowdclient.Options{
		Timeout:          150 * time.Millisecond, // blackholed calls fail by timeout
		Retries:          -1,                     // isolate the breaker from the retry loop
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	})
	ctx := context.Background()

	// Healthy through the proxy.
	if _, err := cli.Stats(ctx); err != nil {
		t.Fatalf("through healthy proxy: %v", err)
	}

	// The network goes dark: blackhole new traffic and cut pooled
	// connections so the client has to re-dial into the void.
	proxy.Set(faultnet.Faults{Blackhole: true})
	proxy.CutActive()
	var sawOpen bool
	for i := 0; i < 10 && !sawOpen; i++ {
		_, err := cli.Stats(ctx)
		if errors.Is(err, crowdclient.ErrCircuitOpen) {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened under blackhole")
	}
	// While open, calls fail fast without touching the network.
	accBefore := proxy.Stats().Accepted
	for i := 0; i < 5; i++ {
		if _, err := cli.Stats(ctx); !errors.Is(err, crowdclient.ErrCircuitOpen) {
			t.Fatalf("call %d while open = %v, want ErrCircuitOpen", i, err)
		}
	}
	if accAfter := proxy.Stats().Accepted; accAfter != accBefore {
		t.Fatalf("fast-failing calls opened %d new connections; want 0", accAfter-accBefore)
	}
	rs := cli.ResilienceStats()
	if rs.BreakerState != "open" || rs.BreakerOpens == 0 || rs.BreakerFastFails < 5 {
		t.Fatalf("breaker stats under blackhole = %+v", rs)
	}

	// The network heals; the swallowed connections are cut so fresh
	// dials reach the backend, and the breaker's half-open trial closes
	// it again without any outside intervention.
	proxy.Heal()
	proxy.CutActive()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cli.Stats(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the network healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := cli.ResilienceStats(); st.BreakerState != "closed" {
		t.Fatalf("breaker after heal = %q, want closed", st.BreakerState)
	}
}

// Package chaos holds the end-to-end resilience suite: a full crowdd
// stack (durable DB, manager, HTTP server) exercised through the
// fault-injecting layers — internal/faultnet between client and server,
// internal/faultfs under the journal — by a real crowdclient.
//
// The suite asserts the resilience contract (DESIGN.md §9):
//
//   - no acknowledged mutation is lost or double-applied, whatever the
//     network does;
//   - the client's circuit breaker opens under a blackhole and closes
//     again after the network heals;
//   - a journal write failure seals mutations into degraded read-only
//     mode while selections keep answering from the last committed
//     model, and the server heals itself once the disk returns.
//
// The package has no non-test code; it exists so `go test
// ./internal/chaos/` (the `make chaos` target) names the suite.
package chaos

package sim

import (
	"strings"
	"testing"

	"crowdselect/internal/core"
	"crowdselect/internal/corpus"
	"crowdselect/internal/randx"
	"crowdselect/internal/text"
)

func simFixture(t *testing.T) (*corpus.Dataset, *core.Model, []int) {
	t.Helper()
	p := corpus.Quora().Scaled(0.06)
	p.Seed = 21
	d := corpus.MustGenerate(p)
	cfg := core.NewConfig(8)
	cfg.MaxIter = 40
	m, _, err := core.Train(resolvedTasks(d), len(d.Workers), d.Vocab.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, 150)
	for i := 0; i < len(d.Tasks) && len(ids) < 150; i++ {
		ids = append(ids, i)
	}
	return d, m, ids
}

func TestRunValidation(t *testing.T) {
	d, m, ids := simFixture(t)
	pol := SelectorPolicy{Ranker: m}
	if _, err := Run(d, ids, pol, Config{CrowdK: 0}); err == nil {
		t.Error("CrowdK=0 accepted")
	}
	if _, err := Run(d, ids, pol, Config{CrowdK: 2, Noise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := Run(d, []int{9999}, pol, Config{CrowdK: 2}); err == nil {
		t.Error("bad task id accepted")
	}
}

// The headline closed-loop claim: oracle ≥ TDPM > random in realized
// best-answer quality, and oracle regret is (by construction) zero.
func TestRoutingQualityOrdering(t *testing.T) {
	d, m, ids := simFixture(t)
	cfg := Config{CrowdK: 3, Noise: 0.3, Seed: 9}

	tdpm, err := Run(d, ids, SelectorPolicy{Ranker: m}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(d, ids, RandomPolicy{RNG: randx.New(4)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(d, ids, NewOraclePolicy(d), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !(oracle.MeanBest >= tdpm.MeanBest) {
		t.Errorf("oracle %.3f below TDPM %.3f", oracle.MeanBest, tdpm.MeanBest)
	}
	if !(tdpm.MeanBest > random.MeanBest+0.1) {
		t.Errorf("TDPM %.3f does not clearly beat random %.3f", tdpm.MeanBest, random.MeanBest)
	}
	if oracle.Regret > 1e-9 {
		t.Errorf("oracle regret = %v", oracle.Regret)
	}
	if tdpm.Regret < 0 {
		t.Errorf("TDPM regret negative: %v", tdpm.Regret)
	}
	if random.Regret <= tdpm.Regret {
		t.Errorf("random regret %.3f not above TDPM regret %.3f", random.Regret, tdpm.Regret)
	}
}

func TestRunDeterministic(t *testing.T) {
	d, m, ids := simFixture(t)
	cfg := Config{CrowdK: 2, Noise: 0.2, Seed: 5}
	a, err := Run(d, ids, SelectorPolicy{Ranker: m}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, ids, SelectorPolicy{Ranker: m}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("repeated run differs: %+v vs %+v", a, b)
	}
}

func TestRandomPolicyPicksDistinctOnline(t *testing.T) {
	pol := RandomPolicy{RNG: randx.New(1)}
	online := []int{3, 5, 9, 11}
	for trial := 0; trial < 50; trial++ {
		got := pol.Pick(nil1Bag(), online, 3)
		if len(got) != 3 {
			t.Fatalf("picked %d", len(got))
		}
		seen := map[int]bool{}
		for _, w := range got {
			if seen[w] {
				t.Fatal("duplicate pick")
			}
			seen[w] = true
			if w != 3 && w != 5 && w != 9 && w != 11 {
				t.Fatalf("picked offline worker %d", w)
			}
		}
	}
	// Over-ask clamps.
	if got := pol.Pick(nil1Bag(), online, 99); len(got) != len(online) {
		t.Errorf("over-ask returned %d", len(got))
	}
}

func TestOracleFallbackOnUnknownTask(t *testing.T) {
	d, _, _ := simFixture(t)
	oracle := NewOraclePolicy(d)
	got := oracle.Pick(nil1Bag(), []int{0, 1, 2}, 2)
	if len(got) != 2 {
		t.Errorf("fallback pick = %v", got)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Policy: "TDPM", Tasks: 10, MeanBest: 3.21}
	if s := r.String(); !strings.Contains(s, "TDPM") || !strings.Contains(s, "3.210") {
		t.Errorf("String = %q", s)
	}
}

func nil1Bag() text.Bag { return text.Bag{} }

// resolvedTasks converts a dataset to training input (kept local: the
// eval package imports sim, so sim's tests cannot import eval).
func resolvedTasks(d *corpus.Dataset) []core.ResolvedTask {
	out := make([]core.ResolvedTask, len(d.Tasks))
	for j, t := range d.Tasks {
		rt := core.ResolvedTask{Bag: t.Bag(d.Vocab)}
		for _, r := range t.Responses {
			rt.Responses = append(rt.Responses, core.Scored{Worker: r.Worker, Score: r.Score})
		}
		out[j] = rt
	}
	return out
}

// Package sim closes the loop of Figure 1: it routes a stream of
// arriving tasks to workers chosen by a selection policy, simulates
// the answers those workers would produce (using the corpus
// generator's hidden ground-truth skills), and measures the realized
// answer quality. This is the systems payoff the paper argues for —
// task-driven selection should put questions in front of workers who
// produce better answers — quantified against random and oracle
// routing.
package sim

import (
	"fmt"
	"math"
	"sort"

	"crowdselect/internal/corpus"
	"crowdselect/internal/randx"
	"crowdselect/internal/rank"
	"crowdselect/internal/text"
)

// Policy picks k workers from the online pool for a task.
type Policy interface {
	Name() string
	Pick(bag text.Bag, online []int, k int) []int
}

// Ranker is the subset of eval.Selector the policy adapter needs
// (declared locally to avoid a dependency cycle with eval).
type Ranker interface {
	Name() string
	Rank(bag text.Bag, candidates []int) []int
}

// SelectorPolicy adapts any crowd-selection algorithm to a routing
// policy.
type SelectorPolicy struct {
	Ranker Ranker
}

// Name identifies the underlying algorithm.
func (p SelectorPolicy) Name() string { return p.Ranker.Name() }

// Pick returns the algorithm's top-k online workers.
func (p SelectorPolicy) Pick(bag text.Bag, online []int, k int) []int {
	ranked := p.Ranker.Rank(bag, online)
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// RandomPolicy routes to uniformly random online workers — the
// no-model control.
type RandomPolicy struct {
	RNG *randx.RNG
}

// Name identifies the control policy.
func (RandomPolicy) Name() string { return "random" }

// Pick samples k distinct online workers uniformly.
func (p RandomPolicy) Pick(_ text.Bag, online []int, k int) []int {
	if k > len(online) {
		k = len(online)
	}
	perm := p.RNG.Perm(len(online))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = online[perm[i]]
	}
	sort.Ints(out)
	return out
}

// OraclePolicy routes using the generator's hidden ground truth — the
// upper bound no learned policy can exceed in expectation.
type OraclePolicy struct {
	Dataset *corpus.Dataset
	// TrueMix is looked up by task id registered via Prepare.
	mixes map[string][]float64
}

// Name identifies the oracle.
func (OraclePolicy) Name() string { return "oracle" }

// NewOraclePolicy indexes the dataset's hidden task mixtures by bag
// fingerprint so Pick can recover the true mixture for a task.
func NewOraclePolicy(d *corpus.Dataset) *OraclePolicy {
	p := &OraclePolicy{Dataset: d, mixes: make(map[string][]float64, len(d.Tasks))}
	for _, t := range d.Tasks {
		p.mixes[fingerprint(t.Bag(d.Vocab))] = t.TrueMix
	}
	return p
}

// Pick returns the k online workers with the highest true quality on
// the task.
func (p *OraclePolicy) Pick(bag text.Bag, online []int, k int) []int {
	mix, ok := p.mixes[fingerprint(bag)]
	if !ok {
		out := append([]int(nil), online...)
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	return rank.TopK(online, func(w int) float64 {
		return dot(p.Dataset.Workers[w].TrueSkill, mix)
	}, k)
}

func fingerprint(b text.Bag) string { return fmt.Sprint(b.IDs, b.Counts) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Config controls a simulation run.
type Config struct {
	// CrowdK is the number of workers each task is routed to.
	CrowdK int
	// Noise is the per-answer quality noise (σ of a Gaussian around
	// the worker's true quality, matching the generator's Eq. 6 view).
	Noise float64
	// Seed drives the answer noise (and any stochastic policy state
	// should be seeded separately by the caller).
	Seed int64
}

// Result aggregates one policy's routing performance.
type Result struct {
	Policy string
	Tasks  int
	// MeanBest is the mean over tasks of the best answer quality among
	// the routed workers — what the asker experiences.
	MeanBest float64
	// MeanPicked is the mean answer quality over all routed workers.
	MeanPicked float64
	// Regret is the mean shortfall of MeanBest against oracle routing
	// on the same tasks with the same noise draws.
	Regret float64
}

// String renders the result as one row.
func (r Result) String() string {
	return fmt.Sprintf("%-8s tasks=%-5d best=%.3f picked=%.3f regret=%.3f",
		r.Policy, r.Tasks, r.MeanBest, r.MeanPicked, r.Regret)
}

// Run routes each task through the policy and measures realized
// quality. The same seed gives every policy identical noise draws, so
// results are directly comparable (common random numbers).
func Run(d *corpus.Dataset, taskIDs []int, p Policy, cfg Config) (Result, error) {
	if cfg.CrowdK < 1 {
		return Result{}, fmt.Errorf("sim: CrowdK = %d", cfg.CrowdK)
	}
	if cfg.Noise < 0 {
		return Result{}, fmt.Errorf("sim: Noise = %g", cfg.Noise)
	}
	online := make([]int, len(d.Workers))
	for i := range online {
		online[i] = i
	}
	oracle := NewOraclePolicy(d)
	res := Result{Policy: p.Name()}
	var bestSum, pickedSum, oracleSum float64
	for _, id := range taskIDs {
		if id < 0 || id >= len(d.Tasks) {
			return Result{}, fmt.Errorf("sim: task id %d of %d", id, len(d.Tasks))
		}
		task := d.Tasks[id]
		bag := task.Bag(d.Vocab)

		picked := p.Pick(bag, online, cfg.CrowdK)
		if len(picked) == 0 {
			return Result{}, fmt.Errorf("sim: policy %s picked no workers for task %d", p.Name(), id)
		}
		// Answer noise is a pure function of (seed, task, worker), so
		// every policy sees identical draws for the same pair — common
		// random numbers make the policy comparison exact.
		qualityOf := func(w int) float64 {
			q := dot(d.Workers[w].TrueSkill, task.TrueMix)
			return q + cfg.Noise*qualityNoise(cfg.Seed, id, w)
		}
		best := math.Inf(-1)
		for _, w := range picked {
			q := qualityOf(w)
			pickedSum += q
			if q > best {
				best = q
			}
		}
		bestSum += best

		oPicked := oracle.Pick(bag, online, cfg.CrowdK)
		oBest := math.Inf(-1)
		for _, w := range oPicked {
			if q := qualityOf(w); q > oBest {
				oBest = q
			}
		}
		oracleSum += oBest
		res.Tasks++
	}
	if res.Tasks > 0 {
		res.MeanBest = bestSum / float64(res.Tasks)
		res.MeanPicked = pickedSum / float64(res.Tasks*cfg.CrowdK)
		res.Regret = (oracleSum - bestSum) / float64(res.Tasks)
	}
	return res, nil
}

// qualityNoise returns a standard-normal draw that is a pure function
// of (seed, task, worker) — independent of pick order or of which
// other workers were routed.
func qualityNoise(seed int64, task, worker int) float64 {
	h := seed ^ int64(task)*1000003 ^ int64(worker)*2654435761
	return randx.New(h).Normal(0, 1)
}

package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	b := NewBudget(10)
	f, err := OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644, b)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync within budget: %v", err)
	}
	// This write crosses the budget: 2 bytes land, the rest is torn.
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if !b.Tripped() {
		t.Error("budget not tripped")
	}
	// Everything afterwards fails without touching the file.
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "12345678ab" {
		t.Errorf("file contents %q, want the exact 10-byte budget", got)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	var buf bytes.Buffer
	w := Writer{W: &buf, B: NewBudget(-1)}
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if w.B.Tripped() {
		t.Error("unlimited budget tripped")
	}
}

func TestWriterExactBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := Writer{W: &buf, B: NewBudget(7)}
	// A write that exactly exhausts the budget succeeds...
	if n, err := w.Write([]byte("exactly")); n != 7 || err != nil {
		t.Fatalf("exact write: n=%d err=%v", n, err)
	}
	// ...and the next one fails with nothing written.
	if n, err := w.Write([]byte("more")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("next write: n=%d err=%v", n, err)
	}
}

package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	b := NewBudget(10)
	f, err := OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644, b)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync within budget: %v", err)
	}
	// This write crosses the budget: 2 bytes land, the rest is torn.
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if !b.Tripped() {
		t.Error("budget not tripped")
	}
	// Everything afterwards fails without touching the file.
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "12345678ab" {
		t.Errorf("file contents %q, want the exact 10-byte budget", got)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	var buf bytes.Buffer
	w := Writer{W: &buf, B: NewBudget(-1)}
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if w.B.Tripped() {
		t.Error("unlimited budget tripped")
	}
}

func TestWriterExactBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := Writer{W: &buf, B: NewBudget(7)}
	// A write that exactly exhausts the budget succeeds...
	if n, err := w.Write([]byte("exactly")); n != 7 || err != nil {
		t.Fatalf("exact write: n=%d err=%v", n, err)
	}
	// ...and the next one fails with nothing written.
	if n, err := w.Write([]byte("more")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("next write: n=%d err=%v", n, err)
	}
}

func TestAtRestCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	orig := []byte("hello, at-rest integrity")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	// FlipBit is its own inverse: two flips restore the original.
	if err := FlipBit(path, 3, 5); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("FlipBit changed nothing")
	}
	if got[3] != orig[3]^(1<<5) {
		t.Fatalf("byte 3 = %#x, want %#x", got[3], orig[3]^(1<<5))
	}
	if err := FlipBit(path, 3, 5); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); !bytes.Equal(got, orig) {
		t.Fatalf("double flip did not restore: %q", got)
	}

	if err := FlipBit(path, 0, 8); err == nil {
		t.Fatal("bit 8 accepted")
	}
	if err := FlipBit(path, int64(len(orig)+10), 0); err == nil {
		t.Fatal("offset past EOF accepted")
	}

	if err := OverwriteByte(path, 0, 'X'); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); got[0] != 'X' {
		t.Fatalf("byte 0 = %q, want X", got[0])
	}

	if err := CorruptRange(path, 1, 4); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	for i := int64(1); i < 5; i++ {
		if got[i] != orig[i]^0xFF {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], orig[i]^0xFF)
		}
	}
	if got[5] != orig[5] {
		t.Fatal("CorruptRange spilled past its range")
	}
}

// Package faultfs injects write failures at byte granularity: a file
// wrapper that persists exactly the first N bytes handed to it and
// then fails, simulating a process killed (or a disk gone away)
// mid-append. The crash-safety tests in internal/crowddb use it to
// kill the journal at arbitrary offsets and assert that recovery
// loses no acknowledged mutation.
package faultfs

import (
	"errors"
	"io"
	"os"
	"sync"
	"time"
)

// ErrInjected is returned by every operation after the budget is
// exhausted.
var ErrInjected = errors.New("faultfs: injected write failure")

// Budget is a shared pool of bytes that may still reach disk. One
// budget can back several files (e.g. a journal and its rotated
// successor), so "crash after N bytes of total write traffic" spans
// rotations. Independently of the byte budget it can fail fsyncs
// only (FailSyncs), simulating a disk that accepts writes into its
// cache but cannot flush them.
type Budget struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
	failSyncs bool
	syncDelay time.Duration
	readDelay time.Duration
}

// NewBudget allows n bytes of writes before failure. n < 0 means
// unlimited (no injected failures).
func NewBudget(n int64) *Budget {
	return &Budget{remaining: n}
}

// take consumes up to n bytes, returning how many may be written and
// whether the budget tripped on this call or earlier.
func (b *Budget) take(n int64) (allowed int64, tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining < 0 {
		return n, false
	}
	if b.tripped {
		return 0, true
	}
	if n <= b.remaining {
		b.remaining -= n
		return n, false
	}
	allowed = b.remaining
	b.remaining = 0
	b.tripped = true
	return allowed, true
}

// Tripped reports whether the injected failure has fired.
func (b *Budget) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// FailSyncs toggles sync-only failure: while set, File.Sync returns
// ErrInjected but writes keep succeeding — the write path stays
// healthy while durability is gone. Clearing it heals syncs.
func (b *Budget) FailSyncs(fail bool) {
	b.mu.Lock()
	b.failSyncs = fail
	b.mu.Unlock()
}

// syncsFailing reports whether sync-only failure is active.
func (b *Budget) syncsFailing() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failSyncs
}

// Latency injection: delays without failures, simulating a disk that
// is healthy but slow (a saturated device, a thrashing cache, a
// network filesystem hiccup). Each File.Sync / File.Read then sleeps
// the configured delay before touching the real file. Zero (the
// default) injects nothing.

// DelaySyncs makes every subsequent File.Sync sleep d first. The sync
// still succeeds — this is slowness, not failure, and must not trip
// degraded mode.
func (b *Budget) DelaySyncs(d time.Duration) {
	b.mu.Lock()
	b.syncDelay = d
	b.mu.Unlock()
}

// DelayReads makes every subsequent File.Read / File.ReadAt sleep d
// first.
func (b *Budget) DelayReads(d time.Duration) {
	b.mu.Lock()
	b.readDelay = d
	b.mu.Unlock()
}

func (b *Budget) syncDelayNow() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syncDelay
}

func (b *Budget) readDelayNow() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readDelay
}

// File wraps an *os.File, counting every written byte against a
// Budget. The write that crosses the budget is torn: the allowed
// prefix reaches the real file, the rest never does, and the call —
// like every subsequent Write or Sync — returns ErrInjected. Close
// always closes the real file.
type File struct {
	f *os.File
	b *Budget
}

// OpenFile opens path with os.OpenFile semantics and wraps it.
func OpenFile(path string, flag int, perm os.FileMode, b *Budget) (*File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f, b: b}, nil
}

// Write persists the budgeted prefix of p and fails on the rest.
func (f *File) Write(p []byte) (int, error) {
	allowed, tripped := f.b.take(int64(len(p)))
	n := 0
	if allowed > 0 {
		var err error
		n, err = f.f.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if tripped {
		// What made it through must be on disk — the torn prefix is
		// the crash artifact recovery has to cope with.
		f.f.Sync()
		return n, ErrInjected
	}
	return n, nil
}

// Sync fsyncs the real file, or fails if the budget tripped or
// sync-only failure is active. A configured sync delay is served
// first — a slow disk is slow even when it eventually fails.
func (f *File) Sync() error {
	if d := f.b.syncDelayNow(); d > 0 {
		time.Sleep(d)
	}
	if f.b.Tripped() || f.b.syncsFailing() {
		return ErrInjected
	}
	return f.f.Sync()
}

// Read reads from the real file, sleeping the configured read delay
// first.
func (f *File) Read(p []byte) (int, error) {
	if d := f.b.readDelayNow(); d > 0 {
		time.Sleep(d)
	}
	return f.f.Read(p)
}

// ReadAt reads at offset from the real file, sleeping the configured
// read delay first.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if d := f.b.readDelayNow(); d > 0 {
		time.Sleep(d)
	}
	return f.f.ReadAt(p, off)
}

// Close closes the underlying file regardless of budget state.
func (f *File) Close() error { return f.f.Close() }

// At-rest corruption injection: targeted, surgical damage to bytes
// already on disk, as a failing medium (bit rot, a misdirected write,
// a buggy controller) would inflict it. The integrity tests use these
// to corrupt journals, snapshots and model checkpoints in place and
// assert the scrubber and the anti-entropy protocol catch the damage
// before it is served or replicated.

// FlipBit inverts one bit of the byte at offset in path, in place.
// bit 0 is the least significant. The file's length and mtime-visible
// shape stay unchanged — exactly the damage a CRC or digest must
// catch.
func FlipBit(path string, offset int64, bit uint) error {
	if bit > 7 {
		return errors.New("faultfs: bit out of range")
	}
	return mutateByte(path, offset, func(b byte) byte { return b ^ (1 << bit) })
}

// OverwriteByte replaces the byte at offset in path with v, in place.
func OverwriteByte(path string, offset int64, v byte) error {
	return mutateByte(path, offset, func(byte) byte { return v })
}

// CorruptRange XORs every byte in [offset, offset+n) with 0xFF — a
// misdirected or shredded sector.
func CorruptRange(path string, offset, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return err
	}
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if _, err := f.WriteAt(buf, offset); err != nil {
		return err
	}
	return f.Sync()
}

// mutateByte applies fn to the single byte at offset and syncs.
func mutateByte(path string, offset int64, fn func(byte) byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var one [1]byte
	if _, err := f.ReadAt(one[:], offset); err != nil {
		return err
	}
	one[0] = fn(one[0])
	if _, err := f.WriteAt(one[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

// Writer wraps any io.Writer with the same byte budget, for unit
// tests that do not need a real file.
type Writer struct {
	W io.Writer
	B *Budget
}

// Write persists the budgeted prefix and fails on the rest.
func (w Writer) Write(p []byte) (int, error) {
	allowed, tripped := w.B.take(int64(len(p)))
	n := 0
	if allowed > 0 {
		var err error
		n, err = w.W.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if tripped {
		return n, ErrInjected
	}
	return n, nil
}

module crowdselect

go 1.22

// Command readme-api regenerates the README's API reference table from
// the server's route registrations (crowddb.APIReferenceMarkdown),
// replacing whatever sits between the api-reference markers. Run it via
// `make readme-api` after changing the route surface; the crowddb test
// TestAPIReferenceMatchesMux fails while the README is stale.
package main

import (
	"fmt"
	"os"
	"strings"

	"crowdselect/internal/crowddb"
)

const (
	begin = "<!-- api-reference:begin -->"
	end   = "<!-- api-reference:end -->"
)

func main() {
	path := "README.md"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readme-api:", err)
		os.Exit(1)
	}
	s := string(b)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		fmt.Fprintf(os.Stderr, "readme-api: %s has no %s / %s markers\n", path, begin, end)
		os.Exit(1)
	}
	out := s[:i] + begin + "\n" + crowddb.APIReferenceMarkdown() + end + s[j+len(end):]
	if out == s {
		return
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "readme-api:", err)
		os.Exit(1)
	}
	fmt.Println("readme-api: regenerated", path)
}

// Streaming / incremental crowd-selection: the scenario of §6 of the
// paper. A TDPM is trained on the historical prefix of a Yahoo!-like
// corpus; the remaining tasks then arrive as a stream. Each arriving
// task is projected into the existing latent category space
// (Algorithm 3) and routed in real time; its feedback is folded into
// the answerers' skill posteriors incrementally, without a batch
// retrain.
//
// Run with:
//
//	go run ./examples/streaming [-scale 0.1] [-k 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"crowdselect"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale")
	k := flag.Int("k", 8, "latent categories")
	flag.Parse()

	d, err := crowdselect.GenerateDataset(crowdselect.YahooProfile().Scaled(*scale))
	if err != nil {
		log.Fatal(err)
	}
	all := crowdselect.ResolvedTasksOf(d)
	split := len(all) * 7 / 10
	historical, stream := all[:split], all[split:]
	fmt.Printf("history: %d tasks   stream: %d tasks   workers: %d\n\n",
		len(historical), len(stream), len(d.Workers))

	start := time.Now()
	model, stats, err := crowdselect.Train(historical, len(d.Workers), d.Vocab.Size(), crowdselect.NewConfig(*k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch-trained on history in %s (%d sweeps)\n\n",
		time.Since(start).Round(time.Millisecond), stats.Sweeps)

	var (
		latency  time.Duration
		hits     int
		routable int
	)
	for _, task := range stream {
		if len(task.Responses) < 2 {
			continue
		}
		routable++

		// Real-time selection: project the arriving task and rank its
		// candidate crowd (here: the workers who actually answered, so
		// we can check against the recorded feedback).
		cands := make([]int, len(task.Responses))
		best, bestScore := -1, -1.0
		for j, r := range task.Responses {
			cands[j] = r.Worker
			if r.Score > bestScore {
				best, bestScore = r.Worker, r.Score
			}
		}
		t0 := time.Now()
		cat := model.Project(task.Bag)
		top := model.SelectTopK(cat.Mean(), cands, 1)
		latency += time.Since(t0)
		if len(top) == 1 && top[0] == best {
			hits++
		}

		// Fold the stream task's feedback into the involved workers'
		// skills (§4.2 issue 2 — crowd update).
		for _, r := range task.Responses {
			if err := model.UpdateWorkerSkill(r.Worker, []crowdselect.TaskCategory{cat}, []float64{r.Score}); err != nil {
				log.Fatal(err)
			}
		}

		if routable%50 == 0 {
			fmt.Printf("  streamed %4d tasks  rolling Top1 %.3f  mean selection latency %s\n",
				routable, float64(hits)/float64(routable), (latency / time.Duration(routable)).Round(time.Microsecond))
		}
	}
	fmt.Printf("\nstream complete: %d tasks routed, Top1 %.3f, mean selection latency %s\n",
		routable, float64(hits)/float64(routable), (latency / time.Duration(routable)).Round(time.Microsecond))
}

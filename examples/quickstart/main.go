// Quickstart: train TDPM on a handful of hand-written resolved tasks
// and ask it the paper's motivating question — who should answer
// "What are the advantages of B+ Tree over B Tree?" (§1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crowdselect"
)

func main() {
	vocab := crowdselect.NewVocabulary()

	// A tiny history of resolved question-answering tasks. Worker 0 is
	// the database expert (high feedback on DB questions, low on
	// cooking), worker 1 is the cook, worker 2 answers everything at a
	// mediocre level — the prolific-but-average profile the paper's
	// Multinomial critique is about.
	history := []struct {
		question string
		scores   map[int]float64
	}{
		{"What are the advantages of B+ Tree over B Tree?", map[int]float64{0: 5, 2: 1}},
		{"How does a database index speed up range queries?", map[int]float64{0: 4, 2: 2}},
		{"Why do relational databases use B+ tree indexes?", map[int]float64{0: 5, 2: 1}},
		{"When should a database table be denormalized?", map[int]float64{0: 4, 2: 1}},
		{"How do I keep a sourdough starter alive?", map[int]float64{1: 5, 2: 2}},
		{"What flour ratio makes pizza dough stretchy?", map[int]float64{1: 4, 2: 1}},
		{"How long should bread dough proof in the fridge?", map[int]float64{1: 5, 2: 2}},
		{"Which pan sears a steak best?", map[int]float64{1: 4, 2: 2}},
	}

	// Each question was asked (in variants) several times; repeating
	// the history gives the tiny example enough evidence to separate
	// the two latent categories cleanly.
	var tasks []crowdselect.ResolvedTask
	for round := 0; round < 4; round++ {
		for _, h := range history {
			rt := crowdselect.ResolvedTask{
				Bag: crowdselect.NewBag(vocab, crowdselect.Tokenize(h.question)),
			}
			for w, s := range h.scores {
				rt.Responses = append(rt.Responses, crowdselect.Scored{Worker: w, Score: s})
			}
			tasks = append(tasks, rt)
		}
	}

	cfg := crowdselect.NewConfig(2) // two latent categories
	model, stats, err := crowdselect.Train(tasks, 3, vocab.Size(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained TDPM: %d sweeps, converged=%v\n\n", stats.Sweeps, stats.Converged)

	names := []string{"db-expert", "cook", "generalist"}
	for _, question := range []string{
		"What are the advantages of B+ Tree over B Tree?",
		"What hydration should my bread dough have?",
	} {
		bag := crowdselect.NewBagKnown(vocab, crowdselect.Tokenize(question))
		cat := model.Project(bag) // Algorithm 3: project into latent space
		c := cat.Mean()
		fmt.Printf("task: %q\n", question)
		for _, w := range model.SelectTopK(c, nil, 3) {
			fmt.Printf("  %-12s predictive score %.2f\n", names[w], model.Score(w, c))
		}
		fmt.Println()
	}
}

// Durability demo: the crowd database surviving a restart. The first
// "process lifetime" trains TDPM, opens a durable data directory,
// journals a burst of crowd activity (submit → answer → feedback),
// and shuts down cleanly. The second lifetime reopens the same
// directory and restores everything — store rows, and the skill
// posteriors the feedback taught the model — without retraining,
// by loading the model checkpoint and replaying the journal through
// the manager's feedback path (DESIGN.md §7).
//
// This is the same lifecycle cmd/crowdd runs behind its -data-dir
// flag, driven in process through the public API.
//
// Run with:
//
//	go run ./examples/durability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"crowdselect"
)

func main() {
	dir, err := os.MkdirTemp("", "crowdselect-durability-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- first process lifetime: train, serve, journal, shut down ----

	d, err := crowdselect.GenerateDataset(crowdselect.QuoraProfile().Scaled(0.05))
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := crowdselect.Train(crowdselect.ResolvedTasksOf(d), len(d.Workers), d.Vocab.Size(), crowdselect.NewConfig(8))
	if err != nil {
		log.Fatal(err)
	}

	db, err := crowdselect.OpenDurable(dir, crowdselect.DurabilityOptions{
		// Every acknowledged mutation is fsynced before success —
		// the strictest policy; see SyncEvery/SyncInterval for the
		// group-commit trade-offs.
		Sync: crowdselect.SyncAlways(),
	})
	if err != nil {
		log.Fatal(err)
	}
	store := db.Store()
	for _, w := range d.Workers {
		if _, err := store.AddWorker(w.ID, fmt.Sprintf("worker-%03d", w.ID)); err != nil {
			log.Fatal(err)
		}
	}
	cm := crowdselect.NewConcurrentModel(model)
	mgr, err := crowdselect.NewManager(store, d.Vocab, cm, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Wire the durability hooks: the model checkpoint written at each
	// compaction, quiesced so no feedback update tears it.
	db.SetModelSnapshotter(cm.Save)
	db.SetQuiescer(mgr.Quiesce)
	// The dataset carries the vocabulary; persist it so the restart
	// can project new tasks without regenerating the corpus.
	if err := d.SaveFile(db.DatasetPath()); err != nil {
		log.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}

	// A burst of crowd activity, all journaled as it happens.
	resolved := 0
	for _, t := range d.Tasks[:6] {
		sub, err := mgr.SubmitTask(context.Background(), strings.Join(t.Tokens, " "), 3)
		if err != nil {
			log.Fatal(err)
		}
		scores := make(map[int]float64)
		for rank, w := range sub.Workers {
			if err := mgr.CollectAnswer(sub.Task.ID, w, fmt.Sprintf("answer from %d", w)); err != nil {
				log.Fatal(err)
			}
			scores[w] = float64(5 - rank) // feedback: earlier ranks scored higher
		}
		if _, err := mgr.ResolveTask(context.Background(), sub.Task.ID, scores); err != nil {
			log.Fatal(err)
		}
		resolved++
	}
	st := db.Stats()
	fmt.Printf("first lifetime: resolved %d tasks; journaled %d records (%d bytes, %d fsyncs)\n",
		resolved, st.RecordsWritten, st.BytesWritten, st.Fsyncs)

	// Graceful shutdown: compact (atomic snapshot + model checkpoint,
	// journal rotation) and close. A crash instead of this is fine
	// too — recovery would replay the journal; see the crash tests in
	// internal/crowddb.
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- second process lifetime: restore without retraining ----

	db2, err := crowdselect.OpenDurable(dir, crowdselect.DurabilityOptions{Sync: crowdselect.SyncAlways()})
	if err != nil {
		log.Fatal(err)
	}
	if db2.Fresh() {
		log.Fatal("expected persisted state in the data directory")
	}
	d2, err := crowdselect.LoadDatasetFile(db2.DatasetPath())
	if err != nil {
		log.Fatal(err)
	}
	model2, err := db2.LoadModel()
	if err != nil {
		log.Fatal(err)
	}
	cm2 := crowdselect.NewConcurrentModel(model2)
	mgr2, err := crowdselect.NewManager(db2.Store(), d2.Vocab, cm2, 3)
	if err != nil {
		log.Fatal(err)
	}
	db2.SetModelSnapshotter(cm2.Save)
	db2.SetQuiescer(mgr2.Quiesce)
	// Replay the journal tail; resolve events flow through the
	// manager's feedback path, rebuilding the exact skill posteriors.
	if err := db2.Recover(mgr2.ApplySkillFeedback); err != nil {
		log.Fatal(err)
	}
	st2 := db2.Stats()
	fmt.Printf("second lifetime: restored generation %d, replayed %d journal records in %dms\n",
		st2.Generation, st2.RecoveredRecords, st2.RecoveryMillis)
	fmt.Printf("store after restart: %d workers, %d tasks\n", db2.Store().NumWorkers(), db2.Store().NumTasks())

	// The restored manager keeps serving — and keeps journaling.
	sub, err := mgr2.SubmitTask(context.Background(), strings.Join(d2.Tasks[7].Tokens, " "), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-restart selection for task %d: workers %v\n", sub.Task.ID, sub.Workers)
	if err := db2.Close(); err != nil {
		log.Fatal(err)
	}
}

// Crowd-manager service demo: boots the Figure 1 pipeline end to end,
// in process. It generates a Quora-like corpus, trains TDPM, stands up
// the crowd database and HTTP crowd manager, and then plays both
// sides — submitting a question over HTTP, collecting answers from the
// selected workers, and posting feedback that updates their skills.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"crowdselect"
)

func main() {
	// Build the platform: corpus → model → crowd database → manager.
	d, err := crowdselect.GenerateDataset(crowdselect.QuoraProfile().Scaled(0.05))
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := crowdselect.Train(crowdselect.ResolvedTasksOf(d), len(d.Workers), d.Vocab.Size(), crowdselect.NewConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	store := crowdselect.NewStore()
	for _, w := range d.Workers {
		if _, err := store.AddWorker(w.ID, fmt.Sprintf("worker-%03d", w.ID)); err != nil {
			log.Fatal(err)
		}
	}
	mgr, err := crowdselect.NewManager(store, d.Vocab, model, 3)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(crowdselect.NewServer(mgr))
	defer srv.Close()
	fmt.Printf("crowd manager (%s) serving %d workers at %s\n\n",
		mgr.SelectorName(), store.NumWorkers(), srv.URL)

	// Submit a task: the manager projects it and dispatches to the
	// top-3 online workers.
	question := d.Tasks[3].Tokens // reuse generated platform language
	text := ""
	for _, tok := range question {
		text += tok + " "
	}
	var sub struct {
		TaskID  int    `json:"task_id"`
		Workers []int  `json:"workers"`
		Model   string `json:"model"`
	}
	post(srv.URL+"/api/tasks", map[string]any{"text": text, "k": 3}, &sub)
	fmt.Printf("submitted task %d; dispatcher sent it to workers %v\n", sub.TaskID, sub.Workers)

	// The selected workers answer.
	for i, w := range sub.Workers {
		post(fmt.Sprintf("%s/api/tasks/%d/answers", srv.URL, sub.TaskID),
			map[string]any{"worker": w, "answer": fmt.Sprintf("answer #%d", i)}, nil)
	}
	fmt.Printf("collected %d answers\n", len(sub.Workers))

	// The requester scores the answers (thumbs-up counts); feedback
	// resolves the task and updates skills.
	scores := map[string]float64{}
	for i, w := range sub.Workers {
		scores[fmt.Sprint(w)] = float64(5 - 2*i)
	}
	var resolved struct {
		Status  int `json:"status"`
		Answers []struct {
			Worker int     `json:"worker"`
			Score  float64 `json:"score"`
		} `json:"answers"`
	}
	post(fmt.Sprintf("%s/api/tasks/%d/feedback", srv.URL, sub.TaskID),
		map[string]any{"scores": scores}, &resolved)
	fmt.Println("feedback recorded; answer scores:")
	for _, a := range resolved.Answers {
		fmt.Printf("  worker %3d scored %.0f\n", a.Worker, a.Score)
	}

	// Final pipeline state.
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstats: %v\n", stats)

	// The middleware tracked every call above: per-endpoint counts,
	// errors and latency quantiles.
	mresp, err := http.Get(srv.URL + "/api/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Requests  int64 `json:"requests"`
		Errors    int64 `json:"errors"`
		Endpoints map[string]struct {
			Count int64   `json:"count"`
			P50Ms float64 `json:"p50_ms"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmetrics: %d requests, %d errors\n", metrics.Requests, metrics.Errors)
	for ep, m := range metrics.Endpoints {
		fmt.Printf("  %-32s count %2d  p50 %6.2fms  p99 %6.2fms\n", ep, m.Count, m.P50Ms, m.P99Ms)
	}
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// Question-routing comparison: generate a Quora-like crowdsourcing
// corpus, train all four crowd-selection algorithms of the paper
// (VSM, TSPM, DRM, TDPM; §7.2.1), and report ACCU precision and
// Top1/Top2 recall on held-out-style question routing — a miniature of
// the paper's Table 3/Table 4 experiment.
//
// Run with:
//
//	go run ./examples/qarouting [-scale 0.15] [-k 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"crowdselect"
)

func main() {
	scale := flag.Float64("scale", 0.15, "dataset scale")
	k := flag.Int("k", 10, "latent categories")
	flag.Parse()

	profile := crowdselect.QuoraProfile()
	d, err := crowdselect.GenerateDataset(profile.Scaled(*scale))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d questions, %d workers\n\n", len(d.Tasks), len(d.Workers))

	group := crowdselect.ExtractGroup(d, 1)
	tests := crowdselect.TestTasks(d, group, 1000, 42)
	fmt.Printf("routing %d test questions (K=%d)\n\n", len(tests), *k)
	fmt.Printf("%-6s %-8s %-8s %-8s %-10s %s\n", "algo", "ACCU", "Top1", "Top2", "select/task", "train")

	selectors := map[crowdselect.Algo]crowdselect.Selector{}
	for _, algo := range []crowdselect.Algo{
		crowdselect.AlgoVSM, crowdselect.AlgoTSPM, crowdselect.AlgoDRM, crowdselect.AlgoTDPM,
	} {
		start := time.Now()
		sel, err := crowdselect.TrainAlgo(d, algo, crowdselect.TrainOptions{K: *k, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		trainTime := time.Since(start)
		selectors[algo] = sel
		res := crowdselect.Evaluate(d, sel, group, tests, *k)
		fmt.Printf("%-6s %-8.3f %-8.3f %-8.3f %-10s %s\n",
			algo, res.ACCU, res.Top1, res.Top2,
			res.MeanSelect.Round(time.Microsecond), trainTime.Round(time.Millisecond))
	}

	// Closed-loop view: route the same questions with each policy and
	// measure the answer quality the asker would actually see.
	fmt.Printf("\nclosed-loop routing (crowd of 3, realized best-answer quality):\n")
	simCfg := crowdselect.RoutingConfig{CrowdK: 3, Noise: 0.3, Seed: 7}
	policies := []crowdselect.RoutingPolicy{
		crowdselect.RandomPolicy{RNG: crowdselect.NewRNG(2)},
		crowdselect.SelectorPolicy{Ranker: selectors[crowdselect.AlgoVSM]},
		crowdselect.SelectorPolicy{Ranker: selectors[crowdselect.AlgoTDPM]},
		crowdselect.NewOraclePolicy(d),
	}
	for _, pol := range policies {
		res, err := crowdselect.SimulateRouting(d, tests, pol, simCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", res)
	}
}

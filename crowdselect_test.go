package crowdselect_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"crowdselect"
)

// facadeTasks builds a tiny two-category history through the public
// API only.
func facadeTasks(vocab *crowdselect.Vocabulary) []crowdselect.ResolvedTask {
	history := []struct {
		q      string
		scores map[int]float64
	}{
		{"advantages of B+ tree over B tree", map[int]float64{0: 5, 2: 1}},
		{"how does a database index work", map[int]float64{0: 4, 2: 2}},
		{"why use a B+ tree index in a database", map[int]float64{0: 5, 2: 1}},
		{"best flour for pizza dough", map[int]float64{1: 5, 2: 2}},
		{"how long to proof bread dough", map[int]float64{1: 4, 2: 1}},
		{"sourdough starter feeding schedule", map[int]float64{1: 5, 2: 2}},
	}
	var tasks []crowdselect.ResolvedTask
	for round := 0; round < 4; round++ {
		for _, h := range history {
			rt := crowdselect.ResolvedTask{Bag: crowdselect.NewBag(vocab, crowdselect.Tokenize(h.q))}
			for w, s := range h.scores {
				rt.Responses = append(rt.Responses, crowdselect.Scored{Worker: w, Score: s})
			}
			tasks = append(tasks, rt)
		}
	}
	return tasks
}

func TestFacadeTrainSelectRoundTrip(t *testing.T) {
	vocab := crowdselect.NewVocabulary()
	tasks := facadeTasks(vocab)
	model, stats, err := crowdselect.Train(tasks, 3, vocab.Size(), crowdselect.NewConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sweeps == 0 {
		t.Error("no sweeps recorded")
	}
	bag := crowdselect.NewBagKnown(vocab, crowdselect.Tokenize("advantages of a B+ tree index"))
	cat := model.Project(bag)
	top := model.SelectTopK(cat.Mean(), nil, 1)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("selected %v, want the database expert (0)", top)
	}

	// Persistence through the facade.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := crowdselect.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.SelectTopK(cat.Mean(), nil, 1); got[0] != top[0] {
		t.Errorf("reloaded model selects %v, want %v", got, top)
	}
}

func TestFacadeDatasetAndEvaluation(t *testing.T) {
	p := crowdselect.QuoraProfile().Scaled(0.03)
	d, err := crowdselect.GenerateDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := crowdselect.TrainAlgo(d, crowdselect.AlgoVSM, crowdselect.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := crowdselect.ExtractGroup(d, 1)
	tests := crowdselect.TestTasks(d, g, 50, 1)
	res := crowdselect.Evaluate(d, sel, g, tests, 0)
	if res.Tasks == 0 || res.ACCU < 0 || res.ACCU > 1 {
		t.Errorf("result = %+v", res)
	}
	if crowdselect.ACCU(0, 5) != 1 {
		t.Error("ACCU facade broken")
	}
}

func TestFacadeCrowdPipeline(t *testing.T) {
	vocab := crowdselect.NewVocabulary()
	tasks := facadeTasks(vocab)
	model, _, err := crowdselect.Train(tasks, 3, vocab.Size(), crowdselect.NewConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	store := crowdselect.NewStore()
	for i := 0; i < 3; i++ {
		if _, err := store.AddWorker(i, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := crowdselect.NewManager(store, vocab, model, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mgr.SubmitTask(context.Background(), "database index questions", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Workers) != 2 {
		t.Fatalf("selected %v", sub.Workers)
	}
	if err := mgr.CollectAnswer(sub.Task.ID, sub.Workers[0], "an answer"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.ResolveTask(context.Background(), sub.Task.ID, map[int]float64{sub.Workers[0]: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRNGAndJaccard(t *testing.T) {
	rng := crowdselect.NewRNG(1)
	if v := rng.Float64(); v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
	vocab := crowdselect.NewVocabulary()
	a := crowdselect.NewBag(vocab, []string{"x", "y"})
	b := crowdselect.NewBag(vocab, []string{"y", "z"})
	if got := crowdselect.Jaccard(a, b); got <= 0 || got >= 1 {
		t.Errorf("Jaccard = %v", got)
	}
}

// ExampleTrain demonstrates the README quick start end to end.
func ExampleTrain() {
	vocab := crowdselect.NewVocabulary()
	var tasks []crowdselect.ResolvedTask
	for i := 0; i < 8; i++ {
		tasks = append(tasks,
			crowdselect.ResolvedTask{
				Bag:       crowdselect.NewBag(vocab, crowdselect.Tokenize("btree index database query")),
				Responses: []crowdselect.Scored{{Worker: 0, Score: 5}, {Worker: 1, Score: 1}},
			},
			crowdselect.ResolvedTask{
				Bag:       crowdselect.NewBag(vocab, crowdselect.Tokenize("bread dough oven baking")),
				Responses: []crowdselect.Scored{{Worker: 0, Score: 1}, {Worker: 1, Score: 5}},
			})
	}
	model, _, err := crowdselect.Train(tasks, 2, vocab.Size(), crowdselect.NewConfig(2))
	if err != nil {
		panic(err)
	}
	bag := crowdselect.NewBagKnown(vocab, crowdselect.Tokenize("how to tune a database index"))
	cat := model.Project(bag)
	fmt.Println(model.SelectTopK(cat.Mean(), nil, 1))
	// Output: [0]
}
